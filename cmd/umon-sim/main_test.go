package main

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"fmt"

	"umon/internal/pcapio"
	"umon/internal/report"
	"umon/internal/telemetry"
)

func TestRunProducesArtifacts(t *testing.T) {
	dir := t.TempDir()
	if err := run("hadoop", 0.15, 2, 7, 4, 1, dir, false, 0, true, nil); err != nil {
		t.Fatal(err)
	}
	// Mirror pcap exists and parses.
	f, err := os.Open(filepath.Join(dir, "mirrors.pcap"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rd, err := pcapio.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	pkts, err := rd.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) == 0 {
		t.Error("no mirrored packets captured")
	}
	// Reports exist.
	reports, _ := filepath.Glob(filepath.Join(dir, "*.umon"))
	if len(reports) == 0 {
		t.Error("no report files written")
	}
	// Traffic pcap exists and parses.
	tf, err := os.Open(filepath.Join(dir, "traffic.pcap"))
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	trd, err := pcapio.NewReader(tf)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := trd.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(tp) == 0 {
		t.Error("no traffic packets captured")
	}
}

func TestRunRejectsUnknownWorkload(t *testing.T) {
	if err := run("netflix", 0.15, 1, 7, 4, 1, t.TempDir(), false, 0, false, nil); err == nil {
		t.Error("unknown workload must fail")
	}
}

// TestRunTelemetryCoversAcceptanceFamilies runs a short sim with a live
// registry and checks the Prometheus exposition covers every family the
// acceptance criteria name — live ones non-zero, analyzer-plane ones
// present at zero.
func TestRunTelemetryCoversAcceptanceFamilies(t *testing.T) {
	reg := telemetry.NewRegistry()
	if err := run("hadoop", 0.15, 1, 7, 4, 1, t.TempDir(), false, 0, false, reg); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	out := buf.String()
	for _, fam := range []string{
		"umon_ingest_samples_total",
		"umon_ingest_ring_full_total",
		"umon_netsim_events_total",
		"umon_decode_cold_total",
		"umon_decode_cache_hits_total",
		"umon_analyzer_reports_visited_total",
		"umon_analyzer_reports_skipped_total",
		"umon_stage_wall_ns",
	} {
		if !strings.Contains(out, fam) {
			t.Errorf("exposition missing family %s", fam)
		}
	}
	if reg.Value("umon_netsim_events_total") == 0 {
		t.Error("netsim events counter not live")
	}
	if reg.Value(`umon_ingest_samples_total{shard="0"}`) == 0 {
		t.Error("per-host ingest samples counter not live")
	}
}

// TestRunShardedMatchesSerialArtifacts runs the same short simulation with
// the serial engine and with 3 shards: the host report files must be
// byte-identical (each host's egress stream is identical at any shard
// count), the mirror record multiset must match, and -trace-pcap must be
// refused under sharding.
func TestRunShardedMatchesSerialArtifacts(t *testing.T) {
	serialDir, shardDir := t.TempDir(), t.TempDir()
	if err := run("hadoop", 0.15, 2, 7, 4, 1, serialDir, false, 0, false, nil); err != nil {
		t.Fatal(err)
	}
	if err := run("hadoop", 0.15, 2, 7, 4, 3, shardDir, false, 0, false, nil); err != nil {
		t.Fatal(err)
	}

	// Reports: same file names, same bytes.
	serialReports, _ := filepath.Glob(filepath.Join(serialDir, "*.umon"))
	if len(serialReports) == 0 {
		t.Fatal("serial run wrote no reports")
	}
	for _, sr := range serialReports {
		want, err := os.ReadFile(sr)
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(shardDir, filepath.Base(sr)))
		if err != nil {
			t.Fatalf("sharded run missing report %s: %v", filepath.Base(sr), err)
		}
		if !bytes.Equal(want, got) {
			t.Errorf("report %s differs between serial and sharded run", filepath.Base(sr))
		}
	}

	// Mirrors: identical record multiset (the sharded writer orders by
	// (time, switch, port); the serial one streams in dispatch order, which
	// may interleave switches differently inside one nanosecond).
	readSorted := func(dir string) []string {
		f, err := os.Open(filepath.Join(dir, "mirrors.pcap"))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		rd, err := pcapio.NewReader(f)
		if err != nil {
			t.Fatal(err)
		}
		pkts, err := rd.ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		out := make([]string, len(pkts))
		for i, p := range pkts {
			out[i] = string(p.Data)
		}
		sort.Strings(out)
		return out
	}
	serialRecs, shardRecs := readSorted(serialDir), readSorted(shardDir)
	if len(serialRecs) == 0 {
		t.Fatal("serial run mirrored no packets")
	}
	if len(serialRecs) != len(shardRecs) {
		t.Fatalf("mirror count differs: serial %d, sharded %d", len(serialRecs), len(shardRecs))
	}
	for i := range serialRecs {
		if serialRecs[i] != shardRecs[i] {
			t.Fatalf("mirror record %d differs between serial and sharded run", i)
		}
	}

	if err := run("hadoop", 0.15, 1, 7, 4, 2, t.TempDir(), false, 0, true, nil); err == nil {
		t.Error("-trace-pcap with shards > 1 must be refused")
	}
}

// TestRunStreamMode runs the sim in streaming mode: sealed epochs land in
// one framed reports.umstream (decodable, indexed) instead of per-period
// files, and the result is identical at any shard count.
func TestRunStreamMode(t *testing.T) {
	dir := t.TempDir()
	if err := run("hadoop", 0.15, 2, 7, 4, 1, dir, true, 1, false, nil); err != nil {
		t.Fatal(err)
	}
	if legacy, _ := filepath.Glob(filepath.Join(dir, "*.umon")); len(legacy) != 0 {
		t.Errorf("stream mode still wrote %d per-period files", len(legacy))
	}
	raw, err := os.ReadFile(filepath.Join(dir, "reports.umstream"))
	if err != nil {
		t.Fatal(err)
	}
	reports, bad, err := report.ReadStream(bytes.NewReader(raw))
	if err != nil || bad != 0 {
		t.Fatalf("stream decode: %v (bad %d)", err, bad)
	}
	// 16 fat-tree hosts × (-ms 2 split into 1 ms epochs + final partial).
	if len(reports) < 32 {
		t.Fatalf("streamed %d epoch reports, want >= 32", len(reports))
	}
	idx, err := report.ReadIndex(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != len(reports) {
		t.Errorf("index has %d entries for %d frames", len(idx), len(reports))
	}

	// Sharded streaming produces the same epoch payload set (frame order
	// may differ: hosts flush concurrently).
	shardDir := t.TempDir()
	if err := run("hadoop", 0.15, 2, 7, 4, 3, shardDir, true, 1, false, nil); err != nil {
		t.Fatal(err)
	}
	raw2, err := os.ReadFile(filepath.Join(shardDir, "reports.umstream"))
	if err != nil {
		t.Fatal(err)
	}
	reports2, bad2, err := report.ReadStream(bytes.NewReader(raw2))
	if err != nil || bad2 != 0 {
		t.Fatalf("sharded stream decode: %v (bad %d)", err, bad2)
	}
	canon := func(rs []report.EpochReport) []string {
		out := make([]string, len(rs))
		for i, er := range rs {
			var buf bytes.Buffer
			if _, err := er.Report.Encode(&buf); err != nil {
				t.Fatal(err)
			}
			out[i] = fmt.Sprintf("%d|%d|%s", er.Epoch, er.Report.Host, buf.String())
		}
		sort.Strings(out)
		return out
	}
	a, b := canon(reports), canon(reports2)
	if len(a) != len(b) {
		t.Fatalf("epoch count differs: serial %d, sharded %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("epoch payload %d differs between serial and sharded streaming run", i)
		}
	}
}
