// umon-sim runs a µMon-instrumented data-center simulation and exports
// its artifacts: the mirrored event packets as a pcap capture, the host
// WaveSketch reports as files, and a summary of the run.
//
// Usage:
//
//	umon-sim -workload hadoop -load 0.15 -ms 20 -out out/
//
// The outputs feed umon-analyze:
//
//	umon-analyze -mirrors out/mirrors.pcap -reports out/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"umon/internal/analyzer"
	"umon/internal/core"
	"umon/internal/netsim"
	"umon/internal/packet"
	"umon/internal/pcapio"
	"umon/internal/telemetry"
	"umon/internal/uevent"
	"umon/internal/wavesketch"
	"umon/internal/workload"
)

func main() {
	wl := flag.String("workload", "hadoop", "workload: hadoop or websearch")
	load := flag.Float64("load", 0.15, "target link load (0-1)")
	ms := flag.Int64("ms", 20, "traffic duration in milliseconds")
	seed := flag.Int64("seed", 42, "generation seed")
	sampleBits := flag.Uint("sample-bits", 6, "event sampling: probability 1/2^bits")
	shards := flag.Int("shards", 0, "simulation engine shards (0: UMON_WORKERS or 1; the trace is identical at any count)")
	outDir := flag.String("out", "umon-out", "output directory")
	stream := flag.Bool("stream", false, "ship host reports as one epoch-rotated stream (reports.umstream) instead of per-period files")
	epochMs := flag.Int64("epoch-ms", 0, "host sealing period in milliseconds (0: one period spanning the whole run)")
	tracePcap := flag.Bool("trace-pcap", false, "also dump host egress traffic (headers) as traffic.pcap")
	telemetryAddr := flag.String("telemetry-addr", "", "serve live telemetry on this address (/metrics Prometheus, /vars JSON, /debug/pprof)")
	telemetryDump := flag.Bool("telemetry-dump", false, "print a telemetry summary to stderr at end of run")
	flag.Parse()

	var reg *telemetry.Registry
	if *telemetryAddr != "" || *telemetryDump {
		reg = telemetry.NewRegistry()
	}
	if *telemetryAddr != "" {
		srv, err := telemetry.Serve(*telemetryAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "umon-sim:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "umon-sim: telemetry on http://%s/metrics\n", srv.Addr())
	}
	if *shards <= 0 {
		if env, err := strconv.Atoi(os.Getenv("UMON_WORKERS")); err == nil && env > 0 {
			*shards = env
		} else {
			*shards = 1
		}
	}
	err := run(*wl, *load, *ms, *seed, *sampleBits, *shards, *outDir, *stream, *epochMs, *tracePcap, reg)
	if *telemetryDump {
		reg.WriteSummary(os.Stderr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "umon-sim:", err)
		os.Exit(1)
	}
}

func run(wl string, load float64, ms, seed int64, sampleBits uint, shards int, outDir string, stream bool, epochMs int64, tracePcap bool, reg *telemetry.Registry) error {
	var dist *workload.Distribution
	switch strings.ToLower(wl) {
	case "hadoop":
		dist = workload.FacebookHadoop()
	case "websearch":
		dist = workload.WebSearch()
	default:
		return fmt.Errorf("unknown workload %q (want hadoop or websearch)", wl)
	}
	if tracePcap && shards > 1 {
		// The traffic pcap streams every host egress through one writer in
		// dispatch order; with shards > 1 the callbacks fire concurrently.
		return fmt.Errorf("-trace-pcap requires -shards 1 (host egress streams into one ordered pcap)")
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}

	topo, err := netsim.FatTree(4)
	if err != nil {
		return err
	}
	cfg := netsim.DefaultConfig(topo)
	cfg.Seed = uint64(seed)
	cfg.Stats = netsim.NewSimStats(reg)
	cfg.Shards = shards
	// Register the full µMon metric surface up front so a scrape during the
	// run covers every family: the ingest vec counts per-host sketch
	// samples live; the analyzer-plane series (decode cache, MightSee
	// routing) exist at zero until an analyzer runs in-process.
	var ingStats wavesketch.IngestStats
	if s := wavesketch.NewIngestStats(reg, topo.Hosts); s != nil {
		ingStats = *s
	}
	_ = analyzer.NewPlaneStats(reg)
	tracer := telemetry.NewTracer(reg)
	flows, err := workload.Generate(workload.Config{
		Dist: dist, Load: load, Hosts: topo.Hosts,
		LinkBps: cfg.LinkBps, DurationNs: ms * 1_000_000, Seed: seed,
	})
	if err != nil {
		return err
	}
	n, err := netsim.New(cfg)
	if err != nil {
		return err
	}

	// Deploy µMon: reports to files, mirrors to pcap.
	mirrorFile, err := os.Create(filepath.Join(outDir, "mirrors.pcap"))
	if err != nil {
		return err
	}
	defer mirrorFile.Close()
	mirrorW := pcapio.NewWriter(mirrorFile, 0)

	sysCfg := core.DefaultSystem()
	sysCfg.Host.PeriodNs = ms * 1_000_000
	if epochMs > 0 {
		sysCfg.Host.PeriodNs = epochMs * 1_000_000
	}
	sysCfg.Switch.Rule = uevent.ACLRule{SampleBits: sampleBits}

	// Streaming mode ships every host's sealed epochs into one framed,
	// seekable stream file instead of per-period report files — the input
	// shape umon-collect tails. The sink serializes concurrent Ship calls,
	// so it is safe at any shard count.
	var streamSink *core.StreamSink
	if stream {
		sf, err := os.Create(filepath.Join(outDir, "reports.umstream"))
		if err != nil {
			return err
		}
		defer sf.Close()
		streamSink, err = core.NewStreamSink(sf)
		if err != nil {
			return err
		}
	}

	// With shards > 1 the netsim callbacks fire concurrently (serialized
	// per host/switch, not globally): the error slot takes a mutex, and
	// report files are numbered per host, which both keeps the naming
	// deterministic at any shard count and needs no cross-host lock.
	var errMu sync.Mutex
	var pipelineErr error
	setErr := func(err error) {
		if err == nil {
			return
		}
		errMu.Lock()
		if pipelineErr == nil {
			pipelineErr = err
		}
		errMu.Unlock()
	}
	hostSeq := make([]int, topo.Hosts)
	hosts := make([]*core.HostMonitor, topo.Hosts)
	for h := 0; h < topo.Hosts; h++ {
		hm, err := core.NewHostMonitor(h, sysCfg.Host, func(host int, encoded []byte) {
			name := filepath.Join(outDir, fmt.Sprintf("report-h%02d-%03d.umon", host, hostSeq[host]))
			hostSeq[host]++
			setErr(os.WriteFile(name, encoded, 0o644))
		})
		if err != nil {
			return err
		}
		if streamSink != nil {
			hm.SetSink(streamSink)
		}
		hosts[h] = hm
	}
	switches := make([]*core.SwitchMonitor, topo.Switches)
	for sw := 0; sw < topo.Switches; sw++ {
		switches[sw] = core.NewSwitchMonitor(int16(sw), sysCfg.Switch, nil)
	}
	n.OnHostEgress = func(host int, pkt *netsim.Packet, now int64) {
		setErr(hosts[host].OnPacket(pkt.Flow, now, int(pkt.Size)))
		ingStats.Samples.At(host).Inc()
	}
	// One scratch buffer serves every mirror encode: WritePacket copies the
	// record into the writer's pooled block before returning, so the bytes
	// need not outlive the call. With shards > 1 the CE callback fires
	// concurrently across switches, so records are buffered under a mutex
	// and written after the run in canonical (time, switch, port) order —
	// one port CE-marks at most one packet per nanosecond, so the key is
	// total and the pcap is identical at every shard count.
	mirrorScratch := make([]byte, 0, packet.MirrorEncodedLen)
	writeMirror := func(rec uevent.MirrorRecord) {
		mirrorScratch = uevent.AppendMirrorPacket(mirrorScratch[:0], rec)
		setErr(mirrorW.WritePacket(pcapio.Packet{
			TimestampNs: rec.TimestampNs, Data: mirrorScratch, OrigLen: len(mirrorScratch),
		}))
	}
	var mirrorMu sync.Mutex
	var mirrorBuf []uevent.MirrorRecord
	n.OnSwitchCE = func(sw, port int16, pkt *netsim.Packet, now int64) {
		if !sysCfg.Switch.Rule.Matches(true, pkt.PSN) {
			return
		}
		rec := uevent.MirrorRecord{
			Port:        netsim.PortID{Switch: sw, Port: port},
			TimestampNs: now,
			PSN:         pkt.PSN,
			OrigBytes:   pkt.Size,
			WireBytes:   pkt.Size,
			Flow:        pkt.Flow,
		}
		if shards > 1 {
			mirrorMu.Lock()
			mirrorBuf = append(mirrorBuf, rec)
			mirrorMu.Unlock()
			return
		}
		writeMirror(rec)
	}

	var trafficW *pcapio.Writer
	if tracePcap {
		f, err := os.Create(filepath.Join(outDir, "traffic.pcap"))
		if err != nil {
			return err
		}
		defer f.Close()
		trafficW = pcapio.NewWriter(f, 128)
		prev := n.OnHostEgress
		n.OnHostEgress = func(host int, pkt *netsim.Packet, now int64) {
			prev(host, pkt, now)
			frame := packet.EncodeData(&packet.Data{
				Flow: pkt.Flow, PSN: pkt.PSN, CE: pkt.CE, WireLen: int(pkt.Size),
			}, 0)
			setErr(trafficW.WritePacket(pcapio.Packet{
				TimestampNs: now, Data: frame, OrigLen: int(pkt.Size),
			}))
		}
	}

	for _, f := range flows {
		if _, err := n.AddFlow(netsim.FlowSpec{Src: f.Src, Dst: f.Dst, Bytes: f.Bytes, StartNs: f.StartNs}); err != nil {
			return err
		}
	}
	horizon := ms*1_000_000 + ms*100_000
	span := tracer.Start("sim_run")
	tr := n.Run(horizon)
	span.End()
	// Drain the sharded mirror buffer in canonical order.
	if len(mirrorBuf) > 0 {
		sort.Slice(mirrorBuf, func(i, j int) bool {
			a, b := mirrorBuf[i], mirrorBuf[j]
			if a.TimestampNs != b.TimestampNs {
				return a.TimestampNs < b.TimestampNs
			}
			if a.Port.Switch != b.Port.Switch {
				return a.Port.Switch < b.Port.Switch
			}
			return a.Port.Port < b.Port.Port
		})
		for _, rec := range mirrorBuf {
			writeMirror(rec)
		}
	}
	span = tracer.Start("host_flush")
	for _, hm := range hosts {
		if err := hm.Flush(); err != nil {
			return err
		}
	}
	span.End()
	if err := mirrorW.Flush(); err != nil {
		return err
	}
	if trafficW != nil {
		if err := trafficW.Flush(); err != nil {
			return err
		}
	}
	if streamSink != nil {
		if err := streamSink.Close(); err != nil {
			return err
		}
	}
	if pipelineErr != nil {
		return pipelineErr
	}

	var reportBytes int64
	for _, hm := range hosts {
		b, _ := hm.Stats()
		reportBytes += b
	}
	fmt.Printf("workload      %s %.0f%% load, %d flows, %d packets\n", dist.Name, load*100, len(flows), tr.TotalPackets())
	fmt.Printf("events        %d ground-truth episodes, %d CE observations\n", len(tr.Episodes), len(tr.CELog))
	if streamSink != nil {
		fmt.Printf("reports       %d framed epochs in reports.umstream, %d bytes (%.2f Mbps/host avg)\n",
			streamSink.Frames(), reportBytes,
			float64(reportBytes)*8/float64(horizon)*1e9/1e6/float64(topo.Hosts))
	} else {
		reportFiles := 0
		for _, s := range hostSeq {
			reportFiles += s
		}
		fmt.Printf("reports       %d files, %d bytes (%.2f Mbps/host avg)\n", reportFiles, reportBytes,
			float64(reportBytes)*8/float64(horizon)*1e9/1e6/float64(topo.Hosts))
	}
	fmt.Printf("output        %s\n", outDir)
	return nil
}
