package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestBenchList checks the -list mode enumerates the experiment registry.
func TestBenchList(t *testing.T) {
	var out, errb bytes.Buffer
	if code := benchMain([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, id := range []string{"fig5", "fig10", "table1"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("-list output missing %s", id)
		}
	}
}

// TestBenchRunsSimFreeExperiments smoke-tests the table pipeline on the
// experiments that need no simulation (fig5 decomposes a synthetic curve,
// table1 prints the paper's hardware numbers), so the test stays fast.
func TestBenchRunsSimFreeExperiments(t *testing.T) {
	var out, errb bytes.Buffer
	if code := benchMain([]string{"-run", "fig5,table1"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"== fig5", "== table1"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q\nstdout:\n%s", want, out.String())
		}
	}
}

// TestBenchTelemetryDump checks -telemetry-dump stays on stderr: the
// stdout tables are unchanged and the summary mentions the stage spans.
func TestBenchTelemetryDump(t *testing.T) {
	var plain, instOut, instErr bytes.Buffer
	if code := benchMain([]string{"-run", "fig5"}, &plain, &instErr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, instErr.String())
	}
	instErr.Reset()
	if code := benchMain([]string{"-run", "fig5", "-telemetry-dump"}, &instOut, &instErr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, instErr.String())
	}
	if plain.String() != instOut.String() {
		t.Error("telemetry changed stdout output")
	}
	if !strings.Contains(instErr.String(), "umon_stage_runs_total") {
		t.Errorf("summary missing stage counters, stderr:\n%s", instErr.String())
	}
}

// TestBenchUnknownExperiment checks failures surface as a non-zero exit.
func TestBenchUnknownExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	if code := benchMain([]string{"-run", "fig999"}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "unknown id") {
		t.Errorf("stderr missing error, got: %s", errb.String())
	}
}
