// umon-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	umon-bench [-run fig11,fig14] [-ms 20] [-seed 42] [-list]
//
// With no -run it executes every registered experiment in presentation
// order, sharing the cached fat-tree simulations across them. -ms scales
// the trace duration (the paper uses 20 ms traces; smaller values are
// useful for smoke runs).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"umon/internal/experiments"
)

func main() {
	run := flag.String("run", "", "comma-separated experiment ids (default: all)")
	ms := flag.Int64("ms", 20, "trace duration in milliseconds")
	seed := flag.Int64("seed", 42, "workload/marking seed")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Println(e.ID)
		}
		return
	}

	cache := experiments.NewCache(experiments.Options{DurationNs: *ms * 1_000_000, Seed: *seed})
	runner := experiments.NewRunner(cache)

	var ids []string
	if *run == "" {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*run, ",")
	}

	failed := 0
	for _, id := range ids {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		start := time.Now()
		tab, err := runner.Run(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "umon-bench: %s: %v\n", id, err)
			failed++
			continue
		}
		tab.Fprint(os.Stdout)
		fmt.Printf("  (%s in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
	if failed > 0 {
		os.Exit(1)
	}
}
