// umon-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	umon-bench [-run fig11,fig14] [-ms 20] [-seed 42] [-list]
//	           [-workers N] [-shards N]
//	           [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//	           [-telemetry-addr :8080] [-telemetry-dump]
//
// With no -run it executes every registered experiment in presentation
// order, prewarming the six shared fat-tree simulations concurrently and
// then sharing them across experiments. -ms scales the trace duration (the
// paper uses 20 ms traces; smaller values are useful for smoke runs).
// -workers bounds the evaluation worker pool (default: GOMAXPROCS, or the
// UMON_WORKERS environment variable); tables are byte-identical at any
// width. -shards runs the simulation engine sharded (default: UMON_WORKERS
// or 1); sharded traces are byte-identical to serial ones, so every table
// is unchanged — only wall-clock time moves.
// -cpuprofile/-memprofile write pprof profiles for the run.
// -telemetry-addr serves the live operational counters (Prometheus
// /metrics, JSON /vars, /debug/pprof); -telemetry-dump prints a summary to
// stderr at exit. Telemetry goes to stderr and never perturbs the tables.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"umon/internal/experiments"
	"umon/internal/parallel"
	"umon/internal/telemetry"
)

func main() {
	os.Exit(benchMain(os.Args[1:], os.Stdout, os.Stderr))
}

// benchMain is the testable entry point: it parses args, runs the
// requested experiments writing tables to stdout and diagnostics to
// stderr, and returns the process exit code.
func benchMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("umon-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	run := fs.String("run", "", "comma-separated experiment ids (default: all)")
	ms := fs.Int64("ms", 20, "trace duration in milliseconds")
	seed := fs.Int64("seed", 42, "workload/marking seed")
	list := fs.Bool("list", false, "list experiment ids and exit")
	workers := fs.Int("workers", 0, "worker-pool width (0: UMON_WORKERS or GOMAXPROCS)")
	shards := fs.Int("shards", 0, "simulation engine shards (0: UMON_WORKERS or 1; traces are identical at any count)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	telemetryAddr := fs.String("telemetry-addr", "", "serve live telemetry on this address (/metrics Prometheus, /vars JSON, /debug/pprof)")
	telemetryDump := fs.Bool("telemetry-dump", false, "print a telemetry summary to stderr at end of run")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintln(stdout, e.ID)
		}
		return 0
	}
	if *workers > 0 {
		parallel.SetWorkers(*workers)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(stderr, "umon-bench: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "umon-bench: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	var reg *telemetry.Registry
	if *telemetryAddr != "" || *telemetryDump {
		reg = telemetry.NewRegistry()
	}
	if *telemetryAddr != "" {
		srv, err := telemetry.Serve(*telemetryAddr, reg)
		if err != nil {
			fmt.Fprintf(stderr, "umon-bench: %v\n", err)
			return 1
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "umon-bench: telemetry on http://%s/metrics\n", srv.Addr())
	}
	tracer := telemetry.NewTracer(reg)

	if *shards <= 0 {
		if env, err := strconv.Atoi(os.Getenv("UMON_WORKERS")); err == nil && env > 0 {
			*shards = env
		} else {
			*shards = 1
		}
	}
	cache := experiments.NewCache(experiments.Options{DurationNs: *ms * 1_000_000, Seed: *seed, Telemetry: reg, Shards: *shards})
	runner := experiments.NewRunner(cache)

	var ids []string
	if *run == "" {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
		// The full suite touches all six standard simulations; build them
		// concurrently before the (sequential) presentation loop.
		start := time.Now()
		span := tracer.Start("prewarm")
		if err := cache.Prewarm(experiments.StandardKeys()); err != nil {
			fmt.Fprintf(stderr, "umon-bench: prewarm: %v\n", err)
			return 1
		}
		span.End()
		fmt.Fprintf(stdout, "  (prewarmed %d simulations in %.1fs, %d workers)\n\n",
			len(experiments.StandardKeys()), time.Since(start).Seconds(), parallel.Workers())
	} else {
		ids = strings.Split(*run, ",")
	}

	failed := 0
	for _, id := range ids {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		start := time.Now()
		span := tracer.Start("exp_" + id)
		tab, err := runner.Run(id)
		span.End()
		if err != nil {
			fmt.Fprintf(stderr, "umon-bench: %s: %v\n", id, err)
			failed++
			continue
		}
		tab.Fprint(stdout)
		fmt.Fprintf(stdout, "  (%s in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
	if *telemetryDump {
		reg.WriteSummary(stderr)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(stderr, "umon-bench: %v\n", err)
			return 1
		}
		runtime.GC() // settle the heap so the profile reflects live data
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(stderr, "umon-bench: %v\n", err)
			return 1
		}
		f.Close()
	}
	if failed > 0 {
		return 1
	}
	return 0
}
