// umon-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	umon-bench [-run fig11,fig14] [-ms 20] [-seed 42] [-list]
//	           [-workers N] [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// With no -run it executes every registered experiment in presentation
// order, prewarming the six shared fat-tree simulations concurrently and
// then sharing them across experiments. -ms scales the trace duration (the
// paper uses 20 ms traces; smaller values are useful for smoke runs).
// -workers bounds the evaluation worker pool (default: GOMAXPROCS, or the
// UMON_WORKERS environment variable); tables are byte-identical at any
// width. -cpuprofile/-memprofile write pprof profiles for the run.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"umon/internal/experiments"
	"umon/internal/parallel"
)

func main() {
	run := flag.String("run", "", "comma-separated experiment ids (default: all)")
	ms := flag.Int64("ms", 20, "trace duration in milliseconds")
	seed := flag.Int64("seed", 42, "workload/marking seed")
	list := flag.Bool("list", false, "list experiment ids and exit")
	workers := flag.Int("workers", 0, "worker-pool width (0: UMON_WORKERS or GOMAXPROCS)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Println(e.ID)
		}
		return
	}
	if *workers > 0 {
		parallel.SetWorkers(*workers)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "umon-bench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "umon-bench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	cache := experiments.NewCache(experiments.Options{DurationNs: *ms * 1_000_000, Seed: *seed})
	runner := experiments.NewRunner(cache)

	var ids []string
	if *run == "" {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
		// The full suite touches all six standard simulations; build them
		// concurrently before the (sequential) presentation loop.
		start := time.Now()
		if err := cache.Prewarm(experiments.StandardKeys()); err != nil {
			fmt.Fprintf(os.Stderr, "umon-bench: prewarm: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("  (prewarmed %d simulations in %.1fs, %d workers)\n\n",
			len(experiments.StandardKeys()), time.Since(start).Seconds(), parallel.Workers())
	} else {
		ids = strings.Split(*run, ",")
	}

	failed := 0
	for _, id := range ids {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		start := time.Now()
		tab, err := runner.Run(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "umon-bench: %s: %v\n", id, err)
			failed++
			continue
		}
		tab.Fprint(os.Stdout)
		fmt.Printf("  (%s in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "umon-bench: %v\n", err)
			os.Exit(1)
		}
		runtime.GC() // settle the heap so the profile reflects live data
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "umon-bench: %v\n", err)
			os.Exit(1)
		}
		f.Close()
	}
	if failed > 0 {
		os.Exit(1)
	}
}
