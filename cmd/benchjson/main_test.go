package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: umon/internal/pcapio
cpu: whatever
BenchmarkPcapReadBatch-8    	178334467	        13.62 ns/op	4846.36 MB/s	       0 B/op	       0 allocs/op
BenchmarkPcapReadBatch-8    	170000000	        14.00 ns/op	4700.00 MB/s	       0 B/op	       0 allocs/op
BenchmarkPcapReadBatch-8    	180000000	        13.40 ns/op	4900.00 MB/s	       0 B/op	       0 allocs/op
BenchmarkPcapWritePacket-8  	71778598	        16.01 ns/op	4123.34 MB/s	      16 B/op	       1 allocs/op
PASS
ok  	umon/internal/pcapio	3.801s
`

func TestParseLine(t *testing.T) {
	name, s, ok := parseLine("BenchmarkDecodeMirror-8 \t 24725103 \t 47.74 ns/op \t 0 B/op \t 0 allocs/op")
	if !ok || name != "DecodeMirror" {
		t.Fatalf("parse = %q, %v", name, ok)
	}
	if s.nsPerOp != 47.74 || s.iters != 24725103 {
		t.Errorf("sample = %+v", s)
	}
	if s.bytesPerOp == nil || *s.bytesPerOp != 0 || s.allocsPerOp == nil || *s.allocsPerOp != 0 {
		t.Errorf("alloc fields = %+v", s)
	}
	if _, _, ok := parseLine("ok  \tumon/internal/pcapio\t3.801s"); ok {
		t.Error("non-benchmark line accepted")
	}
	if _, _, ok := parseLine("PASS"); ok {
		t.Error("PASS line accepted")
	}
	// A name without the -procs suffix still parses.
	if name, _, ok := parseLine("BenchmarkX 100 5.0 ns/op"); !ok || name != "X" {
		t.Errorf("suffixless parse = %q, %v", name, ok)
	}
}

func TestAggregateMedians(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader(benchOutput), &out); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("benchmarks = %d, want 2", len(rep.Benchmarks))
	}
	rb := rep.Benchmarks[0]
	if rb.Name != "PcapReadBatch" || rb.Runs != 3 {
		t.Fatalf("first = %+v", rb)
	}
	if rb.NsPerOp != 13.62 { // median of 13.62, 14.00, 13.40
		t.Errorf("median ns/op = %v, want 13.62", rb.NsPerOp)
	}
	if rb.MBPerS != 4846.36 {
		t.Errorf("median MB/s = %v, want 4846.36", rb.MBPerS)
	}
	if rb.AllocsPerOp == nil || *rb.AllocsPerOp != 0 {
		t.Errorf("allocs = %v", rb.AllocsPerOp)
	}
	wp := rep.Benchmarks[1]
	if wp.Name != "PcapWritePacket" || wp.Runs != 1 || *wp.AllocsPerOp != 1 {
		t.Errorf("second = %+v", wp)
	}
}

func TestCustomMetricsAggregated(t *testing.T) {
	const withMetrics = `BenchmarkQueryScaleFlow-8 	 100 	 76450 ns/op 	 65712 p50-ns 	 166185 p99-ns 	 13080 qps
BenchmarkQueryScaleFlow-8 	 100 	 80000 ns/op 	 67000 p50-ns 	 170000 p99-ns 	 12500 qps
BenchmarkQueryScaleFlow-8 	 100 	 75000 ns/op 	 64000 p50-ns 	 160000 p99-ns 	 13300 qps
`
	var out bytes.Buffer
	if err := run(strings.NewReader(withMetrics), &out); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 {
		t.Fatalf("benchmarks = %d, want 1", len(rep.Benchmarks))
	}
	m := rep.Benchmarks[0].Metrics
	if m["p50-ns"] != 65712 || m["p99-ns"] != 166185 || m["qps"] != 13080 {
		t.Errorf("metrics = %v", m)
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader("no benchmarks here\n"), &out); err == nil {
		t.Error("empty input must error")
	}
}
