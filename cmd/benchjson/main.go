// benchjson converts `go test -bench` text output into machine-readable
// JSON, so CI and scripts can track benchmark numbers without scraping.
// Repeated runs of one benchmark (-count N) are aggregated by median,
// which is what benchstat centers on too.
//
// Usage:
//
//	go test -bench . | benchjson -o BENCH.json
//	benchjson -o BENCH.json bench-mirror.txt
//	benchjson -o BENCH.json bench-api.txt bench-scale.txt
//
// Multiple input files are concatenated, so one JSON document can fold
// together benchmark runs from several packages. Custom units emitted via
// b.ReportMetric (for example p50-ns, p99-ns, qps) land in each result's
// "metrics" map, aggregated by median like the standard columns.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one aggregated benchmark in the JSON output.
type Result struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Runs is how many lines (typically -count) were aggregated.
	Runs int `json:"runs"`
	// Iterations is the median b.N across runs.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the median time per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// MBPerS is the median throughput, when the benchmark reports one.
	MBPerS float64 `json:"mb_per_s,omitempty"`
	// BytesPerOp and AllocsPerOp are the median allocation figures, when
	// reported (-benchmem or b.ReportAllocs).
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds medians of any custom b.ReportMetric units the
	// benchmark emitted (e.g. "p50-ns", "p99-ns", "qps").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	Unit       string   `json:"unit"`
	Benchmarks []Result `json:"benchmarks"`
}

type sample struct {
	iters       int64
	nsPerOp     float64
	mbPerS      *float64
	bytesPerOp  *float64
	allocsPerOp *float64
	metrics     map[string]float64
}

// parseLine parses one "BenchmarkX-8  N  12.3 ns/op ..." line; ok is
// false for non-benchmark lines.
func parseLine(line string) (name string, s sample, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", sample{}, false
	}
	name = strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", sample{}, false
	}
	s.iters = iters
	// The rest is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", sample{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			s.nsPerOp = v
		case "MB/s":
			s.mbPerS = &v
		case "B/op":
			s.bytesPerOp = &v
		case "allocs/op":
			s.allocsPerOp = &v
		default:
			if s.metrics == nil {
				s.metrics = map[string]float64{}
			}
			s.metrics[fields[i+1]] = v
		}
	}
	if s.nsPerOp == 0 && len(fields) == 2 {
		return "", sample{}, false
	}
	return name, s, true
}

func median(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sort.Float64s(vs)
	n := len(vs)
	if n%2 == 1 {
		return vs[n/2]
	}
	return (vs[n/2-1] + vs[n/2]) / 2
}

// aggregate groups parsed lines by name, preserving first-seen order.
func aggregate(r io.Reader) ([]Result, error) {
	samples := map[string][]sample{}
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		name, s, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		if _, seen := samples[name]; !seen {
			order = append(order, name)
		}
		samples[name] = append(samples[name], s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	results := make([]Result, 0, len(order))
	for _, name := range order {
		ss := samples[name]
		res := Result{Name: name, Runs: len(ss)}
		var ns, iters, mbs, bys, als []float64
		metricSamples := map[string][]float64{}
		for _, s := range ss {
			ns = append(ns, s.nsPerOp)
			iters = append(iters, float64(s.iters))
			if s.mbPerS != nil {
				mbs = append(mbs, *s.mbPerS)
			}
			if s.bytesPerOp != nil {
				bys = append(bys, *s.bytesPerOp)
			}
			if s.allocsPerOp != nil {
				als = append(als, *s.allocsPerOp)
			}
			for unit, v := range s.metrics {
				metricSamples[unit] = append(metricSamples[unit], v)
			}
		}
		res.NsPerOp = median(ns)
		res.Iterations = int64(median(iters))
		if len(mbs) > 0 {
			res.MBPerS = median(mbs)
		}
		if len(bys) > 0 {
			v := median(bys)
			res.BytesPerOp = &v
		}
		if len(als) > 0 {
			v := median(als)
			res.AllocsPerOp = &v
		}
		if len(metricSamples) > 0 {
			res.Metrics = make(map[string]float64, len(metricSamples))
			for unit, vs := range metricSamples {
				res.Metrics[unit] = median(vs)
			}
		}
		results = append(results, res)
	}
	return results, nil
}

func run(in io.Reader, out io.Writer) error {
	results, err := aggregate(in)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("benchjson: no benchmark lines in input")
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(Report{Unit: "median over runs", Benchmarks: results})
}

func main() {
	outPath := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		readers := make([]io.Reader, 0, flag.NArg())
		for _, path := range flag.Args() {
			f, err := os.Open(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
			defer f.Close()
			readers = append(readers, f)
		}
		in = io.MultiReader(readers...)
	}
	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	if err := run(in, out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
