package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"umon/internal/collect"
	"umon/internal/flowkey"
	"umon/internal/netsim"
	"umon/internal/opsapi"
	"umon/internal/pcapio"
	"umon/internal/report"
	"umon/internal/telemetry"
	"umon/internal/uevent"
	"umon/internal/wavesketch"
)

func testFlow(i int) flowkey.Key {
	return flowkey.Key{
		SrcIP: 0x0a000101 + uint32(i), DstIP: 0x0a000201,
		SrcPort: uint16(9000 + i), DstPort: flowkey.RoCEPort, Proto: flowkey.ProtoUDP,
	}
}

// writeArtifacts fabricates a matching (reports.umstream, mirrors.pcap)
// pair: three epochs of reports for two hosts, and two bursts of mirrors
// separated by a quiet valley so online detection closes the first burst
// before input ends.
func writeArtifacts(t *testing.T, dir string) (reportsPath, mirrorsPath string) {
	t.Helper()
	reportsPath = filepath.Join(dir, "reports.umstream")
	mirrorsPath = filepath.Join(dir, "mirrors.pcap")

	rf, err := os.Create(reportsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	sw, err := report.NewStreamWriter(rf)
	if err != nil {
		t.Fatal(err)
	}
	for e := uint64(0); e < 3; e++ {
		for h := 0; h < 2; h++ {
			s, err := wavesketch.NewBasic(wavesketch.Default(16))
			if err != nil {
				t.Fatal(err)
			}
			s.Update(testFlow(h), 12, 4096)
			s.Seal()
			if err := sw.WriteReport(e, report.FromBasic(h, 0, s)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}

	mf, err := os.Create(mirrorsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()
	w := pcapio.NewWriter(mf, 0)
	writeBurst := func(startNs int64, n int) {
		for i := 0; i < n; i++ {
			rec := uevent.MirrorRecord{
				Port:        netsim.PortID{Switch: 2, Port: 1},
				TimestampNs: startNs + int64(i)*5_000,
				PSN:         uint32(i * 64),
				OrigBytes:   1058, WireBytes: 1058,
				Flow: testFlow(i % 2),
			}
			if err := w.WritePacket(pcapio.Packet{
				TimestampNs: rec.TimestampNs,
				Data:        uevent.EncodeMirrorPacket(rec),
				OrigLen:     1058,
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	writeBurst(100_000, 20)
	writeBurst(2_000_000, 20)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return reportsPath, mirrorsPath
}

func TestCollectOneShot(t *testing.T) {
	dir := t.TempDir()
	reports, mirrors := writeArtifacts(t, dir)
	reg := telemetry.NewRegistry()
	var out bytes.Buffer
	err := run(context.Background(), options{
		reports: reports, mirrors: mirrors,
		window: 16, epochNs: 20_000_000, gapNs: 50_000,
		out: &out,
	}, reg)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "events        2 detected") {
		t.Errorf("summary missing the two burst events:\n%s", text)
	}
	if !strings.Contains(text, "ingested      6 epoch reports (0 bad), 40 mirrors (0 bad)") {
		t.Errorf("summary ingest line wrong:\n%s", text)
	}
	// The first burst must have closed online (lag measured), not at Drain.
	if reg.Value("umon_collect_detect_lag_ns") == 0 {
		t.Error("no online event emission observed")
	}
	if !strings.Contains(text, "replay        largest event") {
		t.Errorf("summary missing replay line:\n%s", text)
	}
}

// TestCollectFollowShutdown exercises the daemon shape: inputs grow while
// the collector tails them; cancelling the context (the SIGTERM path)
// drains and summarizes.
func TestCollectFollowShutdown(t *testing.T) {
	dir := t.TempDir()
	// Start with complete artifacts; follow mode will read them and then
	// idle at EOF until cancelled.
	reports, mirrors := writeArtifacts(t, dir)
	reg := telemetry.NewRegistry()
	var out bytes.Buffer

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	var runErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		runErr = run(ctx, options{
			reports: reports, mirrors: mirrors,
			window: 16, epochNs: 20_000_000, gapNs: 50_000,
			follow: true, pollInterval: 5 * time.Millisecond,
			quiet: true, out: &out,
		}, reg)
	}()

	// Wait until the tailing daemon has ingested everything, then shut it
	// down like SIGTERM would.
	deadline := time.Now().Add(5 * time.Second)
	for reg.Value("umon_collect_mirrors_ingested_total") < 40 ||
		reg.Value("umon_collect_reports_ingested_total") < 6 {
		if time.Now().After(deadline) {
			cancel()
			wg.Wait()
			t.Fatalf("daemon never ingested the artifacts (err %v)", runErr)
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	wg.Wait()
	if runErr != nil {
		t.Fatal(runErr)
	}
	if !strings.Contains(out.String(), "events        2 detected") {
		t.Errorf("shutdown summary missing events:\n%s", out.String())
	}
}

// TestCollectSummaryJSONAndEventLog runs a one-shot collect with the two
// machine-readable outputs and checks both against the known artifacts:
// the summary object carries the drain stats, the JSONL log carries one
// parseable line per emitted event.
func TestCollectSummaryJSONAndEventLog(t *testing.T) {
	dir := t.TempDir()
	reports, mirrors := writeArtifacts(t, dir)
	summaryPath := filepath.Join(dir, "summary.json")
	eventLogPath := filepath.Join(dir, "events.jsonl")
	reg := telemetry.NewRegistry()
	var out bytes.Buffer
	err := run(context.Background(), options{
		reports: reports, mirrors: mirrors,
		window: 16, epochNs: 20_000_000, gapNs: 50_000,
		summaryJSON: summaryPath, eventLog: eventLogPath,
		quiet: true, out: &out,
	}, reg)
	if err != nil {
		t.Fatal(err)
	}

	b, err := os.ReadFile(summaryPath)
	if err != nil {
		t.Fatal(err)
	}
	var sum runSummary
	if err := json.Unmarshal(b, &sum); err != nil {
		t.Fatalf("summary not one JSON object: %v\n%s", err, b)
	}
	if sum.Events != 2 || sum.ReportsIngested != 6 || sum.MirrorsIngested != 40 {
		t.Errorf("summary = %+v", sum)
	}
	if sum.DetectLag.Count == 0 || sum.DetectLag.P50Ns <= 0 || sum.DetectLag.P99Ns < sum.DetectLag.P50Ns {
		t.Errorf("detect lag percentiles = %+v", sum.DetectLag)
	}
	if sum.DurationP50Ns <= 0 || sum.DurationMaxNs < sum.DurationP99Ns {
		t.Errorf("duration percentiles = %+v", sum)
	}

	lb, err := os.ReadFile(eventLogPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(lb)), "\n")
	if len(lines) != 2 {
		t.Fatalf("event log has %d lines, want 2:\n%s", len(lines), lb)
	}
	for i, line := range lines {
		var ev opsapi.EventJSON
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d not EventJSON: %v\n%s", i, err, line)
		}
		if ev.Seq != i || ev.Packets != 20 || ev.Switch != 2 {
			t.Errorf("line %d = %+v", i, ev)
		}
	}
}

// TestCollectServesOpsAPI is the in-process e2e: a tailing daemon serves
// the ops API on a live window; a follower streams /api/events over SSE
// while ingest runs; after shutdown the streamed set equals the drain
// summary's event count, and /api/status answered the live window.
func TestCollectServesOpsAPI(t *testing.T) {
	dir := t.TempDir()
	reports, mirrors := writeArtifacts(t, dir)
	reg := telemetry.NewRegistry()
	var out bytes.Buffer
	addrCh := make(chan string, 1)

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	var runErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		runErr = run(ctx, options{
			reports: reports, mirrors: mirrors,
			window: 16, epochNs: 20_000_000, gapNs: 50_000,
			follow: true, pollInterval: 5 * time.Millisecond,
			quiet: true, out: &out,
			telemetryAddr: "127.0.0.1:0",
			onReady:       func(addr string) { addrCh <- addr },
		}, reg)
	}()

	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(5 * time.Second):
		cancel()
		wg.Wait()
		t.Fatalf("server never came up (err %v)", runErr)
	}

	// Start the SSE follower before ingest finishes.
	sseResp, err := http.Get("http://" + addr + "/api/events?follow=")
	if err != nil {
		t.Fatal(err)
	}
	defer sseResp.Body.Close()
	type streamed struct {
		events []opsapi.EventJSON
		ended  bool
	}
	streamDone := make(chan streamed, 1)
	go func() {
		var got streamed
		sc := bufio.NewScanner(sseResp.Body)
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "data: ") && line != "data: {}" {
				var ev opsapi.EventJSON
				if json.Unmarshal([]byte(line[6:]), &ev) == nil {
					got.events = append(got.events, ev)
				}
			}
			if line == "event: end" {
				got.ended = true
			}
		}
		streamDone <- got
	}()

	// Wait for full ingest, then check liveness + live status.
	deadline := time.Now().Add(5 * time.Second)
	for reg.Value("umon_collect_mirrors_ingested_total") < 40 ||
		reg.Value("umon_collect_reports_ingested_total") < 6 {
		if time.Now().After(deadline) {
			cancel()
			wg.Wait()
			t.Fatalf("daemon never ingested artifacts (err %v)", runErr)
		}
		time.Sleep(2 * time.Millisecond)
	}
	get := func(path string) []byte {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d: %s", path, resp.StatusCode, b)
		}
		return b
	}
	if b := get("/healthz"); !strings.Contains(string(b), `"status": "ok"`) {
		t.Errorf("healthz = %s", b)
	}
	var st collect.Status
	if err := json.Unmarshal(get("/api/status"), &st); err != nil {
		t.Fatal(err)
	}
	if st.ReportsIngested != 6 || st.MirrorsIngested != 40 || len(st.Hosts) != 2 {
		t.Errorf("live status = %+v", st)
	}
	var tr struct {
		Traces []collect.EpochTrace `json:"traces"`
	}
	if err := json.Unmarshal(get("/api/trace/epochs"), &tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Traces) != 6 {
		t.Errorf("traced %d epochs, want 6", len(tr.Traces))
	}

	// SIGTERM path: drain, stream the final events, end the SSE cleanly.
	cancel()
	wg.Wait()
	if runErr != nil {
		t.Fatal(runErr)
	}
	var got streamed
	select {
	case got = <-streamDone:
	case <-time.After(5 * time.Second):
		t.Fatal("SSE follower never terminated after shutdown")
	}
	if !got.ended {
		t.Error("no end frame on the event stream")
	}
	if len(got.events) != 2 {
		t.Fatalf("follower streamed %d events, drain summary says 2:\n%s", len(got.events), out.String())
	}
	if !strings.Contains(out.String(), "events        2 detected") {
		t.Errorf("drain summary disagrees:\n%s", out.String())
	}
}

func TestCollectMissingInput(t *testing.T) {
	err := run(context.Background(), options{
		reports: filepath.Join(t.TempDir(), "absent.umstream"),
		window:  4, epochNs: 20_000_000, gapNs: 50_000, out: &bytes.Buffer{},
	}, telemetry.NewRegistry())
	if err == nil {
		t.Error("missing input must fail")
	}
}
