package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"umon/internal/flowkey"
	"umon/internal/netsim"
	"umon/internal/pcapio"
	"umon/internal/report"
	"umon/internal/telemetry"
	"umon/internal/uevent"
	"umon/internal/wavesketch"
)

func testFlow(i int) flowkey.Key {
	return flowkey.Key{
		SrcIP: 0x0a000101 + uint32(i), DstIP: 0x0a000201,
		SrcPort: uint16(9000 + i), DstPort: flowkey.RoCEPort, Proto: flowkey.ProtoUDP,
	}
}

// writeArtifacts fabricates a matching (reports.umstream, mirrors.pcap)
// pair: three epochs of reports for two hosts, and two bursts of mirrors
// separated by a quiet valley so online detection closes the first burst
// before input ends.
func writeArtifacts(t *testing.T, dir string) (reportsPath, mirrorsPath string) {
	t.Helper()
	reportsPath = filepath.Join(dir, "reports.umstream")
	mirrorsPath = filepath.Join(dir, "mirrors.pcap")

	rf, err := os.Create(reportsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	sw, err := report.NewStreamWriter(rf)
	if err != nil {
		t.Fatal(err)
	}
	for e := uint64(0); e < 3; e++ {
		for h := 0; h < 2; h++ {
			s, err := wavesketch.NewBasic(wavesketch.Default(16))
			if err != nil {
				t.Fatal(err)
			}
			s.Update(testFlow(h), 12, 4096)
			s.Seal()
			if err := sw.WriteReport(e, report.FromBasic(h, 0, s)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}

	mf, err := os.Create(mirrorsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()
	w := pcapio.NewWriter(mf, 0)
	writeBurst := func(startNs int64, n int) {
		for i := 0; i < n; i++ {
			rec := uevent.MirrorRecord{
				Port:        netsim.PortID{Switch: 2, Port: 1},
				TimestampNs: startNs + int64(i)*5_000,
				PSN:         uint32(i * 64),
				OrigBytes:   1058, WireBytes: 1058,
				Flow: testFlow(i % 2),
			}
			if err := w.WritePacket(pcapio.Packet{
				TimestampNs: rec.TimestampNs,
				Data:        uevent.EncodeMirrorPacket(rec),
				OrigLen:     1058,
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	writeBurst(100_000, 20)
	writeBurst(2_000_000, 20)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return reportsPath, mirrorsPath
}

func TestCollectOneShot(t *testing.T) {
	dir := t.TempDir()
	reports, mirrors := writeArtifacts(t, dir)
	reg := telemetry.NewRegistry()
	var out bytes.Buffer
	err := run(context.Background(), options{
		reports: reports, mirrors: mirrors,
		window: 16, epochNs: 20_000_000, gapNs: 50_000,
		out: &out,
	}, reg)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "events        2 detected") {
		t.Errorf("summary missing the two burst events:\n%s", text)
	}
	if !strings.Contains(text, "ingested      6 epoch reports (0 bad), 40 mirrors (0 bad)") {
		t.Errorf("summary ingest line wrong:\n%s", text)
	}
	// The first burst must have closed online (lag measured), not at Drain.
	if reg.Value("umon_collect_detect_lag_ns") == 0 {
		t.Error("no online event emission observed")
	}
	if !strings.Contains(text, "replay        largest event") {
		t.Errorf("summary missing replay line:\n%s", text)
	}
}

// TestCollectFollowShutdown exercises the daemon shape: inputs grow while
// the collector tails them; cancelling the context (the SIGTERM path)
// drains and summarizes.
func TestCollectFollowShutdown(t *testing.T) {
	dir := t.TempDir()
	// Start with complete artifacts; follow mode will read them and then
	// idle at EOF until cancelled.
	reports, mirrors := writeArtifacts(t, dir)
	reg := telemetry.NewRegistry()
	var out bytes.Buffer

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	var runErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		runErr = run(ctx, options{
			reports: reports, mirrors: mirrors,
			window: 16, epochNs: 20_000_000, gapNs: 50_000,
			follow: true, pollInterval: 5 * time.Millisecond,
			quiet: true, out: &out,
		}, reg)
	}()

	// Wait until the tailing daemon has ingested everything, then shut it
	// down like SIGTERM would.
	deadline := time.Now().Add(5 * time.Second)
	for reg.Value("umon_collect_mirrors_ingested_total") < 40 ||
		reg.Value("umon_collect_reports_ingested_total") < 6 {
		if time.Now().After(deadline) {
			cancel()
			wg.Wait()
			t.Fatalf("daemon never ingested the artifacts (err %v)", runErr)
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	wg.Wait()
	if runErr != nil {
		t.Fatal(runErr)
	}
	if !strings.Contains(out.String(), "events        2 detected") {
		t.Errorf("shutdown summary missing events:\n%s", out.String())
	}
}

func TestCollectMissingInput(t *testing.T) {
	err := run(context.Background(), options{
		reports: filepath.Join(t.TempDir(), "absent.umstream"),
		window:  4, epochNs: 20_000_000, gapNs: 50_000, out: &bytes.Buffer{},
	}, telemetry.NewRegistry())
	if err == nil {
		t.Error("missing input must fail")
	}
}
