// umon-collect is the long-lived µMon collector daemon: it continuously
// ingests the epoch-rotated report stream hosts ship and the mirrored
// µEvent packets switches emit, holds a bounded sliding window of
// queryable epochs, and detects congestion events online — printing each
// event as soon as the mirror watermark proves it closed.
//
// Usage:
//
//	umon-collect -reports out/reports.umstream -mirrors out/mirrors.pcap
//	             [-window 16] [-epoch-ms 20] [-gap-us 50] [-decode-budget 64]
//	             [-follow] [-telemetry-addr :9107]
//	             [-summary-json out/summary.json] [-event-log out/events.jsonl]
//
// With -follow the daemon tails both inputs as they grow and runs until
// SIGINT/SIGTERM, then drains open events and prints a summary. Without
// it, the daemon processes the files to EOF and exits.
//
// -telemetry-addr serves the full introspection plane on one mux:
// /metrics, /vars, /healthz and /debug/pprof from the telemetry package,
// plus the live ops API (/api/status, /api/query/flow, /api/replay,
// /api/events with ?follow= streaming, /api/trace/epochs) answering
// against the live window — see cmd/umonctl for the client.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"umon/internal/analyzer"
	"umon/internal/collect"
	"umon/internal/mbuf"
	"umon/internal/opsapi"
	"umon/internal/pcapio"
	"umon/internal/report"
	"umon/internal/telemetry"
)

func main() {
	reports := flag.String("reports", "", "epoch-rotated report stream (.umstream) from hosts")
	mirrors := flag.String("mirrors", "", "mirror pcap feed from switches")
	window := flag.Int("window", 16, "epochs kept resident; older epochs are evicted (0: unbounded)")
	epochMs := flag.Int64("epoch-ms", 20, "host sealing period in milliseconds")
	gapUs := flag.Int64("gap-us", 50, "event clustering gap in microseconds")
	decodeBudget := flag.Int("decode-budget", 0, "max resident decoded curves per report (0: unbounded)")
	follow := flag.Bool("follow", false, "tail growing inputs until SIGINT/SIGTERM instead of stopping at EOF")
	pollMs := flag.Int64("poll-ms", 50, "tail polling interval in -follow mode")
	quiet := flag.Bool("quiet", false, "suppress per-event lines (summary only)")
	telemetryAddr := flag.String("telemetry-addr", "", "serve telemetry + ops API on this address (/metrics, /healthz, /api/...)")
	telemetryDump := flag.Bool("telemetry-dump", false, "print a telemetry summary to stderr at end of run")
	summaryJSON := flag.String("summary-json", "", "write the final run stats as one JSON object to this file (- for stdout)")
	eventLog := flag.String("event-log", "", "append every emitted event as one JSON line to this file")
	flag.Parse()

	if *reports == "" && *mirrors == "" {
		flag.Usage()
		os.Exit(2)
	}
	reg := telemetry.NewRegistry()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := run(ctx, options{
		reports:       *reports,
		mirrors:       *mirrors,
		window:        *window,
		epochNs:       *epochMs * 1_000_000,
		gapNs:         *gapUs * 1000,
		decodeBudget:  *decodeBudget,
		follow:        *follow,
		pollInterval:  time.Duration(*pollMs) * time.Millisecond,
		quiet:         *quiet,
		telemetryAddr: *telemetryAddr,
		summaryJSON:   *summaryJSON,
		eventLog:      *eventLog,
		out:           os.Stdout,
		onReady: func(addr string) {
			fmt.Fprintf(os.Stderr, "umon-collect: serving http://%s (/metrics, /healthz, /api/status)\n", addr)
		},
	}, reg)
	if *telemetryDump {
		reg.WriteSummary(os.Stderr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "umon-collect:", err)
		os.Exit(1)
	}
}

type options struct {
	reports, mirrors string
	window           int
	epochNs          int64
	gapNs            int64
	decodeBudget     int
	follow           bool
	pollInterval     time.Duration
	quiet            bool
	telemetryAddr    string
	summaryJSON      string
	eventLog         string
	out              io.Writer
	// onReady, when set, receives the bound introspection address once the
	// server is listening (used by main for the startup line and by tests
	// to learn a :0 port).
	onReady func(addr string)
}

// tailReader turns a growing file into a blocking stream: EOF means "no
// more bytes yet", so it polls until new data lands or the context ends —
// only then does it surface io.EOF to the consumer. Partial frames mid-
// write are invisible: the framed readers just block inside ReadFull until
// the writer finishes the frame.
type tailReader struct {
	ctx  context.Context
	f    *os.File
	poll time.Duration
}

func (t *tailReader) Read(p []byte) (int, error) {
	for {
		n, err := t.f.Read(p)
		if n > 0 || err != io.EOF {
			return n, err
		}
		select {
		case <-t.ctx.Done():
			return 0, io.EOF
		case <-time.After(t.poll):
		}
	}
}

// lagSummary condenses a latency histogram for the JSON summary.
type lagSummary struct {
	Count  int64   `json:"count"`
	MeanNs float64 `json:"mean_ns"`
	P50Ns  int64   `json:"p50_le_ns"`
	P99Ns  int64   `json:"p99_le_ns"`
}

func summarizeLag(h *telemetry.Histogram) lagSummary {
	s := lagSummary{Count: h.Count(), P50Ns: h.Quantile(0.50), P99Ns: h.Quantile(0.99)}
	if s.Count > 0 {
		s.MeanNs = float64(h.Sum()) / float64(s.Count)
	}
	return s
}

// runSummary is the -summary-json object: the machine-readable form of
// the drain summary the daemon prints.
type runSummary struct {
	Events          int        `json:"events"`
	ReportsIngested int        `json:"reports_ingested"`
	BadReports      int        `json:"bad_reports"`
	MirrorsIngested int        `json:"mirrors_ingested"`
	BadMirrors      int        `json:"bad_mirrors"`
	ResidentEpochs  int        `json:"resident_epochs"`
	ResidentReports int        `json:"resident_reports"`
	Evictions       int64      `json:"evictions"`
	DetectLag       lagSummary `json:"detect_lag"`
	// Lifecycle stage latencies (wall clock), present when stamped reports
	// were ingested.
	SealShip    lagSummary `json:"seal_ship"`
	ShipAdmit   lagSummary `json:"ship_admit"`
	AdmitDetect lagSummary `json:"admit_detect"`
	SealDetect  lagSummary `json:"seal_detect"`
	// Event duration percentiles (ns), zero when no events.
	DurationP50Ns int64 `json:"duration_p50_ns"`
	DurationP90Ns int64 `json:"duration_p90_ns"`
	DurationP99Ns int64 `json:"duration_p99_ns"`
	DurationMaxNs int64 `json:"duration_max_ns"`
}

func run(ctx context.Context, opt options, reg *telemetry.Registry) error {
	stats := collect.NewStats(reg)
	// The collector's mutators are single-writer: the two ingest loops
	// (reports, mirrors) serialize on this mutex. Reads — the ops API
	// handlers and the end-of-run summary — go through the collector's
	// lock-free snapshot plane and never take it. Events print from
	// whichever loop closes them.
	var mu sync.Mutex
	hub := opsapi.NewHub()

	var evLog *os.File
	if opt.eventLog != "" {
		f, err := os.Create(opt.eventLog)
		if err != nil {
			return err
		}
		evLog = f
		defer evLog.Close()
	}
	seq := 0
	onEvent := func(ev analyzer.Event) {
		hub.Publish(ev)
		if evLog != nil {
			b, _ := json.Marshal(opsapi.NewEventJSON(seq, ev))
			fmt.Fprintf(evLog, "%s\n", b)
		}
		seq++
		if opt.quiet {
			return
		}
		fmt.Fprintf(opt.out, "event  sw%d/p%d  t=%.0f-%.0fus  %d pkts  %d flows\n",
			ev.Port.Switch, ev.Port.Port,
			float64(ev.StartNs)/1000, float64(ev.EndNs)/1000,
			ev.Packets, len(ev.Flows))
	}
	c := collect.New(collect.Config{
		WindowEpochs: opt.window,
		EpochNs:      opt.epochNs,
		GapNs:        opt.gapNs,
		DecodeBudget: opt.decodeBudget,
		OnEvent:      onEvent,
		Stats:        stats,
	})

	var srv *telemetry.Server
	if opt.telemetryAddr != "" {
		mux := telemetry.NewMux(reg)
		opsapi.New(opsapi.Config{Collector: c, Hub: hub, Stats: stats}).Mount(mux)
		var err error
		if srv, err = telemetry.ServeHandler(opt.telemetryAddr, mux); err != nil {
			return err
		}
		if opt.onReady != nil {
			opt.onReady(srv.Addr())
		}
	}

	open := func(path string) (io.Reader, *os.File, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		if opt.follow {
			return &tailReader{ctx: ctx, f: f, poll: opt.pollInterval}, f, nil
		}
		return f, f, nil
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 2)
	var reportsIn, mirrorsIn, badReports, badMirrors int

	if opt.reports != "" {
		rd, f, err := open(opt.reports)
		if err != nil {
			return err
		}
		defer f.Close()
		wg.Add(1)
		go func() {
			defer wg.Done()
			sr, err := report.NewStreamReader(rd)
			if err != nil {
				errCh <- fmt.Errorf("reading %s: %w", opt.reports, err)
				return
			}
			var fr report.Frame
			for {
				err := sr.Next(&fr)
				if err == io.EOF {
					break
				}
				if err == io.ErrUnexpectedEOF && ctx.Err() != nil {
					break // shut down mid-frame while tailing
				}
				if err != nil {
					errCh <- fmt.Errorf("reading %s: %w", opt.reports, err)
					return
				}
				if fr.Type == report.FrameStamp {
					// Seal/ship lifecycle stamp trailing its report frame.
					if st, serr := fr.Stamp(); serr == nil {
						mu.Lock()
						c.Stamp(fr.Host, fr.Epoch, st)
						mu.Unlock()
					}
					continue
				}
				if fr.Type != report.FrameReport {
					continue
				}
				mu.Lock()
				err = c.AddEncoded(fr.Epoch, fr.Payload)
				mu.Unlock()
				if err != nil {
					badReports++
					continue
				}
				reportsIn++
			}
			badReports += sr.CRCErrors()
		}()
	}

	if opt.mirrors != "" {
		rd, f, err := open(opt.mirrors)
		if err != nil {
			return err
		}
		defer f.Close()
		wg.Add(1)
		go func() {
			defer wg.Done()
			pool := mbuf.New(mbuf.Config{Stats: mbuf.NewPoolStats(reg)})
			pr, err := pcapio.NewReaderOpts(rd, pcapio.ReaderOpts{Pool: pool})
			if err != nil {
				errCh <- fmt.Errorf("reading %s: %w", opt.mirrors, err)
				return
			}
			defer pr.Close()
			if opt.follow {
				// Tailing: a batched read would block until a full batch
				// accumulates, so drain record by record — each packet lands
				// in the collector as soon as its bytes hit the file.
				for {
					p, rerr := pr.ReadPacket()
					if rerr == io.EOF {
						break
					}
					if rerr != nil {
						if ctx.Err() != nil {
							break // torn record at shutdown while tailing
						}
						errCh <- fmt.Errorf("reading %s: %w", opt.mirrors, rerr)
						return
					}
					mu.Lock()
					if err := c.AddMirrorPacket(p.Data); err != nil {
						badMirrors++
					} else {
						mirrorsIn++
					}
					c.Poll()
					mu.Unlock()
				}
				return
			}
			// Complete file: the zero-copy batch path (in-place views of
			// pooled buffers, no per-packet copy).
			var batch pcapio.Batch
			for {
				n, rerr := pr.ReadBatch(&batch, pcapio.DefaultBatchSize)
				mu.Lock()
				for _, p := range batch.Pkts[:n] {
					if err := c.AddMirrorPacket(p.Data); err != nil {
						badMirrors++
						continue
					}
					mirrorsIn++
				}
				c.Poll()
				mu.Unlock()
				if rerr == io.EOF {
					break
				}
				if rerr != nil {
					batch.Release()
					errCh <- fmt.Errorf("reading %s: %w", opt.mirrors, rerr)
					return
				}
			}
			batch.Release()
		}()
	}

	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
	}

	// End of input (or shutdown): close every still-open event and report.
	// Drain publishes the final events through OnEvent (so followers see
	// them), then the hub closes and streaming clients get their end frame
	// before the server shuts down gracefully.
	mu.Lock()
	events := c.Drain()
	mu.Unlock()
	epochs, resident := c.Window()
	hub.Close()

	fmt.Fprintf(opt.out, "ingested      %d epoch reports (%d bad), %d mirrors (%d bad)\n",
		reportsIn, badReports, mirrorsIn, badMirrors)
	fmt.Fprintf(opt.out, "window        %d epochs resident (%d reports), %d evicted\n",
		len(epochs), resident, reg.Value("umon_collect_evictions_total"))
	fmt.Fprintf(opt.out, "events        %d detected (gap %dus)\n", len(events), opt.gapNs/1000)
	if n := stats.DetectLagNs.Count(); n > 0 {
		fmt.Fprintf(opt.out, "detect lag    %.0fus mean over %d online emissions\n",
			float64(stats.DetectLagNs.Sum())/float64(n)/1000, n)
	}
	sum := runSummary{
		Events:          len(events),
		ReportsIngested: reportsIn,
		BadReports:      badReports,
		MirrorsIngested: mirrorsIn,
		BadMirrors:      badMirrors,
		ResidentEpochs:  len(epochs),
		ResidentReports: resident,
		Evictions:       reg.Value("umon_collect_evictions_total"),
		DetectLag:       summarizeLag(stats.DetectLagNs),
		SealShip:        summarizeLag(stats.SealShipNs),
		ShipAdmit:       summarizeLag(stats.ShipAdmitNs),
		AdmitDetect:     summarizeLag(stats.AdmitDetectNs),
		SealDetect:      summarizeLag(stats.SealDetectNs),
	}
	if len(events) > 0 {
		ds := analyzer.Durations(events)
		sum.DurationP50Ns, sum.DurationP90Ns = ds.P50Ns, ds.P90Ns
		sum.DurationP99Ns, sum.DurationMaxNs = ds.P99Ns, ds.MaxNs
		fmt.Fprintf(opt.out, "durations     p50 %.0fus  p90 %.0fus  p99 %.0fus  max %.0fus\n",
			float64(ds.P50Ns)/1000, float64(ds.P90Ns)/1000,
			float64(ds.P99Ns)/1000, float64(ds.MaxNs)/1000)
		best := events[0]
		for _, ev := range events {
			if ev.Packets > best.Packets {
				best = ev
			}
		}
		view := c.Replay(best, 250_000)
		var mass float64
		for _, curve := range view.Curves {
			for _, v := range curve {
				mass += v
			}
		}
		fmt.Fprintf(opt.out, "replay        largest event %s: %d flows, %.0f bytes over %d windows\n",
			best.String(), len(view.Curves), mass, view.Windows)
	}
	if opt.summaryJSON != "" {
		if err := writeSummaryJSON(opt.summaryJSON, opt.out, sum); err != nil {
			return err
		}
	}
	if srv != nil {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			return fmt.Errorf("shutting down introspection server: %w", err)
		}
	}
	return nil
}

func writeSummaryJSON(path string, stdout io.Writer, sum runSummary) error {
	w := stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sum)
}
