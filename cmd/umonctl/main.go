// umonctl is the operator's client for a running umon-collect daemon: it
// speaks the JSON ops API the daemon serves on its -telemetry-addr and
// renders the answers for a terminal.
//
// Usage:
//
//	umonctl -addr 127.0.0.1:9107 <command> [flags]
//
// Commands:
//
//	status            window occupancy, watermark, ingest counters
//	hosts             per-host resident epoch lists
//	query  -flow K -from W -to W   per-window byte counts for one flow
//	replay -event N [-margin-us M] curves of every flow in an event
//	events [-since N] [-follow]    emitted events as JSON lines;
//	                               -follow streams live until the daemon drains
//	trace             epoch-lifecycle traces and stage latency summaries
//	health            daemon liveness + build identity
//
// events prints one JSON object per line in both modes, so the stream
// pipes into jq and the CI smoke can diff followed events against the
// daemon's drain summary.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"

	"umon/internal/collect"
	"umon/internal/opsapi"
)

func main() {
	os.Exit(ctl(os.Args[1:], os.Stdout, os.Stderr))
}

func usage(stderr io.Writer) int {
	fmt.Fprintln(stderr, "usage: umonctl [-addr host:port] status|hosts|query|replay|events|trace|health [flags]")
	return 2
}

// ctl runs one invocation; factored from main so tests drive it directly.
func ctl(args []string, stdout, stderr io.Writer) int {
	global := flag.NewFlagSet("umonctl", flag.ContinueOnError)
	global.SetOutput(stderr)
	addr := global.String("addr", "127.0.0.1:9107", "umon-collect introspection address")
	if err := global.Parse(args); err != nil {
		return 2
	}
	rest := global.Args()
	if len(rest) == 0 {
		return usage(stderr)
	}
	cmd, cmdArgs := rest[0], rest[1:]
	cl := &client{base: "http://" + *addr, stdout: stdout, stderr: stderr}
	var err error
	switch cmd {
	case "status":
		err = cl.status()
	case "hosts":
		err = cl.hosts()
	case "query":
		err = cl.query(cmdArgs)
	case "replay":
		err = cl.replay(cmdArgs)
	case "events":
		err = cl.events(cmdArgs)
	case "trace":
		err = cl.trace()
	case "health":
		err = cl.health()
	default:
		fmt.Fprintf(stderr, "umonctl: unknown command %q\n", cmd)
		return usage(stderr)
	}
	if err != nil {
		fmt.Fprintln(stderr, "umonctl:", err)
		return 1
	}
	return 0
}

type client struct {
	base   string
	stdout io.Writer
	stderr io.Writer
}

func (c *client) getJSON(path string, v any) error {
	resp, err := http.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s: %s", path, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.Unmarshal(body, v)
}

func (c *client) status() error {
	var st collect.Status
	if err := c.getJSON("/api/status", &st); err != nil {
		return err
	}
	w := c.stdout
	fmt.Fprintf(w, "window      %d/%d epochs resident (%d reports, %d curves), floor %d\n",
		len(st.Epochs), st.WindowEpochs, st.ResidentReports, st.ResidentCurves, st.EvictionFloor)
	if len(st.Epochs) > 0 {
		fmt.Fprintf(w, "epochs      %d..%d (epoch %dms, gap %dus)\n",
			st.Epochs[0], st.Epochs[len(st.Epochs)-1], st.EpochNs/1_000_000, st.GapNs/1000)
	}
	if st.HasWatermark {
		fmt.Fprintf(w, "watermark   %.3fms\n", float64(st.WatermarkNs)/1_000_000)
	} else {
		fmt.Fprintln(w, "watermark   none (no mirrors yet)")
	}
	fmt.Fprintf(w, "ingested    %d reports, %d mirrors\n", st.ReportsIngested, st.MirrorsIngested)
	fmt.Fprintf(w, "events      %d emitted\n", st.EventsEmitted)
	fmt.Fprintf(w, "hosts       %d reporting, %d epochs traced\n", len(st.Hosts), st.TracedEpochs)
	fmt.Fprintf(w, "snapshot    v%d, published %.3fms\n",
		st.SnapshotVersion, float64(st.SnapshotPublishNs)/1_000_000)
	if total := st.ReportsRouted + st.ReportsRouteSkipped; total > 0 {
		fmt.Fprintf(w, "routing     %d/%d reports visited (%.1f%% selectivity)\n",
			st.ReportsRouted, total, 100*float64(st.ReportsRouted)/float64(total))
	} else {
		fmt.Fprintln(w, "routing     no flow queries yet")
	}
	return nil
}

func (c *client) hosts() error {
	var resp struct {
		Hosts []collect.HostWindow `json:"hosts"`
	}
	if err := c.getJSON("/api/hosts", &resp); err != nil {
		return err
	}
	for _, h := range resp.Hosts {
		fmt.Fprintf(c.stdout, "host %-4d %d epochs resident: %v\n", h.Host, len(h.Epochs), h.Epochs)
	}
	if len(resp.Hosts) == 0 {
		fmt.Fprintln(c.stdout, "no hosts resident")
	}
	return nil
}

func (c *client) query(args []string) error {
	fs := flag.NewFlagSet("query", flag.ContinueOnError)
	fs.SetOutput(c.stderr)
	flow := fs.String("flow", "", "flow key, e.g. 10.0.1.1:9000>10.0.2.1:4791/17")
	from := fs.Int64("from", 0, "first window id (inclusive)")
	to := fs.Int64("to", 0, "last window id (exclusive)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *flow == "" {
		return fmt.Errorf("query: -flow is required")
	}
	var resp opsapi.QueryFlowResponse
	path := fmt.Sprintf("/api/query/flow?flow=%s&from=%d&to=%d", url.QueryEscape(*flow), *from, *to)
	if err := c.getJSON(path, &resp); err != nil {
		return err
	}
	fmt.Fprintf(c.stdout, "flow %s windows [%d..%d)\n", resp.Flow, resp.From, resp.To)
	for i, v := range resp.Windows {
		if v != 0 {
			fmt.Fprintf(c.stdout, "  w%-6d %.0f bytes\n", resp.From+int64(i), v)
		}
	}
	return nil
}

func (c *client) replay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	fs.SetOutput(c.stderr)
	event := fs.Int("event", 0, "event index (see umonctl events)")
	marginUs := fs.Int64("margin-us", 100, "query margin around the event span")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var resp opsapi.ReplayResponse
	path := fmt.Sprintf("/api/replay?event=%d&margin-us=%d", *event, *marginUs)
	if err := c.getJSON(path, &resp); err != nil {
		return err
	}
	ev := resp.Event
	fmt.Fprintf(c.stdout, "event %d  sw%d/p%d  t=%.0f-%.0fus  %d pkts  %d bytes\n",
		ev.Seq, ev.Switch, ev.Port, float64(ev.StartNs)/1000, float64(ev.EndNs)/1000, ev.Packets, ev.Bytes)
	flows := make([]string, 0, len(resp.Curves))
	for f := range resp.Curves {
		flows = append(flows, f)
	}
	sort.Strings(flows)
	for _, f := range flows {
		var mass float64
		for _, v := range resp.Curves[f] {
			mass += v
		}
		fmt.Fprintf(c.stdout, "  %-44s %.0f bytes over %d windows from w%d\n",
			f, mass, resp.Windows, resp.WindowStart)
	}
	return nil
}

func (c *client) events(args []string) error {
	fs := flag.NewFlagSet("events", flag.ContinueOnError)
	fs.SetOutput(c.stderr)
	since := fs.Int("since", 0, "resume cursor (from a previous next value)")
	follow := fs.Bool("follow", false, "stream live events until the daemon drains")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *follow {
		return c.followEvents(*since)
	}
	var resp opsapi.EventsResponse
	if err := c.getJSON(fmt.Sprintf("/api/events?since=%d", *since), &resp); err != nil {
		return err
	}
	enc := json.NewEncoder(c.stdout)
	for _, ev := range resp.Events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// followEvents consumes the daemon's SSE stream, printing each event as
// one JSON line, until the daemon signals the stream's end (drain) or the
// connection drops.
func (c *client) followEvents(since int) error {
	resp, err := http.Get(fmt.Sprintf("%s/api/events?since=%d&follow=", c.base, since))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("follow: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	sc := bufio.NewScanner(resp.Body)
	ending := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "event: end":
			ending = true
		case strings.HasPrefix(line, "data: "):
			if ending {
				return nil // the end frame's payload, not an event
			}
			fmt.Fprintln(c.stdout, line[6:])
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("follow: stream: %w", err)
	}
	return nil
}

func (c *client) trace() error {
	var resp opsapi.TraceResponse
	if err := c.getJSON("/api/trace/epochs", &resp); err != nil {
		return err
	}
	order := []struct{ key, label string }{
		{"seal_ship", "seal→ship"},
		{"ship_admit", "ship→admit"},
		{"admit_detect", "admit→detect"},
		{"seal_detect", "seal→detect"},
	}
	for _, st := range order {
		s, ok := resp.Stages[st.key]
		if !ok {
			continue
		}
		mean := 0.0
		if s.Count > 0 {
			mean = float64(s.SumNs) / float64(s.Count)
		}
		fmt.Fprintf(c.stdout, "%-14s count=%-6d mean=%.0fns p50≤%dns p99≤%dns\n",
			st.label, s.Count, mean, s.P50Ns, s.P99Ns)
	}
	fmt.Fprintf(c.stdout, "traces        %d epochs\n", len(resp.Traces))
	for _, tr := range resp.Traces {
		fmt.Fprintf(c.stdout, "  host %-3d epoch %-6d seal=%d ship=%d admit=%d detect=%d\n",
			tr.Host, tr.Epoch, tr.SealNs, tr.ShipNs, tr.AdmitNs, tr.DetectNs)
	}
	return nil
}

func (c *client) health() error {
	resp, err := http.Get(c.base + "/healthz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/healthz: %s", resp.Status)
	}
	_, err = c.stdout.Write(body)
	return err
}
