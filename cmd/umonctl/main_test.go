package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"umon/internal/analyzer"
	"umon/internal/collect"
	"umon/internal/flowkey"
	"umon/internal/netsim"
	"umon/internal/opsapi"
	"umon/internal/report"
	"umon/internal/telemetry"
	"umon/internal/uevent"
	"umon/internal/wavesketch"
)

func testKey(i int) flowkey.Key {
	return flowkey.Key{
		SrcIP: 0x0a000101 + uint32(i), DstIP: 0x0a000f01,
		SrcPort: uint16(40000 + i), DstPort: flowkey.RoCEPort, Proto: flowkey.ProtoUDP,
	}
}

// startDaemon serves a populated collector the way umon-collect does:
// telemetry mux + ops API + hub. Returns the address and the hub so tests
// can publish live events and close the stream.
func startDaemon(t *testing.T) (addr string, col *collect.Collector, hub *opsapi.Hub, mu *sync.Mutex) {
	t.Helper()
	reg := telemetry.NewRegistry()
	stats := collect.NewStats(reg)
	hub = opsapi.NewHub()
	clock := int64(10_000)
	col = collect.New(collect.Config{
		WindowEpochs: 8, GapNs: 50_000, Stats: stats,
		OnEvent: hub.Publish,
		Now:     func() int64 { clock += 100; return clock },
	})
	for e := uint64(0); e < 3; e++ {
		for h := 0; h < 2; h++ {
			s, err := wavesketch.NewBasic(wavesketch.Default(16))
			if err != nil {
				t.Fatal(err)
			}
			s.Update(testKey(h), 10, 4096)
			s.Seal()
			col.AddStamped(e, report.FromBasic(h, 0, s),
				report.EpochStamp{SealNs: 1_000, ShipNs: 2_000})
		}
	}
	f := testKey(0)
	for _, ns := range []int64{1_000, 2_000, 200_000} {
		col.AddMirror(uevent.MirrorRecord{
			Port: netsim.PortID{Switch: 2, Port: 1}, TimestampNs: ns,
			OrigBytes: 1058, WireBytes: 64, Flow: f,
		})
	}
	if col.Poll() != 1 {
		t.Fatal("fixture expected one event")
	}

	mu = &sync.Mutex{}
	mux := telemetry.NewMux(reg)
	opsapi.New(opsapi.Config{Collector: col, Hub: hub, Stats: stats}).Mount(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return strings.TrimPrefix(srv.URL, "http://"), col, hub, mu
}

func runCtl(t *testing.T, addr string, args ...string) (string, string, int) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := ctl(append([]string{"-addr", addr}, args...), &out, &errOut)
	return out.String(), errOut.String(), code
}

func TestCtlStatus(t *testing.T) {
	addr, _, _, _ := startDaemon(t)
	out, errOut, code := runCtl(t, addr, "status")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	for _, want := range []string{"window", "6 reports", "watermark   0.200ms", "events      1 emitted", "2 reporting",
		"snapshot    v", "routing     no flow queries yet"} {
		if !strings.Contains(out, want) {
			t.Errorf("status output missing %q:\n%s", want, out)
		}
	}
}

func TestCtlHosts(t *testing.T) {
	addr, _, _, _ := startDaemon(t)
	out, _, code := runCtl(t, addr, "hosts")
	if code != 0 {
		t.Fatal(out)
	}
	if !strings.Contains(out, "host 0") || !strings.Contains(out, "host 1") ||
		!strings.Contains(out, "3 epochs resident") {
		t.Errorf("hosts output:\n%s", out)
	}
}

func TestCtlQueryMatchesCollector(t *testing.T) {
	addr, col, _, _ := startDaemon(t)
	f := testKey(0)
	out, errOut, code := runCtl(t, addr, "query", "-flow", f.String(), "-from", "10", "-to", "12")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	want := col.QueryFlow(f, 10, 12)
	if want[0] == 0 {
		t.Fatal("fixture flow invisible")
	}
	if !strings.Contains(out, "w10") {
		t.Errorf("query output missing window line:\n%s", out)
	}
}

func TestCtlReplay(t *testing.T) {
	addr, _, _, _ := startDaemon(t)
	out, errOut, code := runCtl(t, addr, "replay", "-event", "0", "-margin-us", "100")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "event 0  sw2/p1") || !strings.Contains(out, "bytes over") {
		t.Errorf("replay output:\n%s", out)
	}
}

func TestCtlEventsJSONLines(t *testing.T) {
	addr, _, _, _ := startDaemon(t)
	out, _, code := runCtl(t, addr, "events")
	if code != 0 {
		t.Fatal(out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 1 {
		t.Fatalf("events printed %d lines, want 1:\n%s", len(lines), out)
	}
	var ev opsapi.EventJSON
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("line not JSON: %v\n%s", err, lines[0])
	}
	if ev.StartNs != 1000 || ev.EndNs != 2000 || ev.Switch != 2 {
		t.Errorf("event = %+v", ev)
	}
}

// TestCtlEventsFollow streams live: backlog, then a published event, then
// clean exit on hub close — the CI smoke's exact shape.
func TestCtlEventsFollow(t *testing.T) {
	addr, _, hub, _ := startDaemon(t)
	outCh := make(chan string, 1)
	codeCh := make(chan int, 1)
	var out bytes.Buffer
	go func() {
		code := ctl([]string{"-addr", addr, "events", "-follow"}, &out, &out)
		outCh <- out.String()
		codeCh <- code
	}()
	time.Sleep(100 * time.Millisecond) // follower connects and drains backlog
	hub.Publish(analyzer.Event{
		Port: netsim.PortID{Switch: 9, Port: 9}, StartNs: 500_000, EndNs: 501_000, Packets: 3,
	})
	hub.Close()
	select {
	case got := <-outCh:
		if code := <-codeCh; code != 0 {
			t.Fatalf("exit %d:\n%s", code, got)
		}
		lines := strings.Split(strings.TrimSpace(got), "\n")
		if len(lines) != 2 {
			t.Fatalf("followed %d events, want 2:\n%s", len(lines), got)
		}
		var ev opsapi.EventJSON
		if err := json.Unmarshal([]byte(lines[1]), &ev); err != nil || ev.Switch != 9 {
			t.Errorf("live event line = %q (err %v)", lines[1], err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("follow never terminated")
	}
}

func TestCtlTrace(t *testing.T) {
	addr, _, _, _ := startDaemon(t)
	out, errOut, code := runCtl(t, addr, "trace")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	for _, want := range []string{"seal→ship", "seal→detect", "traces        6 epochs", "host 0"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q:\n%s", want, out)
		}
	}
}

func TestCtlHealth(t *testing.T) {
	addr, _, _, _ := startDaemon(t)
	out, _, code := runCtl(t, addr, "health")
	if code != 0 {
		t.Fatal(out)
	}
	if !strings.Contains(out, `"status": "ok"`) {
		t.Errorf("health output:\n%s", out)
	}
}

func TestCtlErrors(t *testing.T) {
	addr, _, _, _ := startDaemon(t)
	if _, _, code := runCtl(t, addr, "bogus"); code != 2 {
		t.Errorf("unknown command exit = %d, want 2", code)
	}
	if _, _, code := runCtl(t, addr); code != 2 {
		t.Errorf("no command exit = %d, want 2", code)
	}
	if _, errOut, code := runCtl(t, addr, "query"); code != 1 || !strings.Contains(errOut, "-flow is required") {
		t.Errorf("query without flow: exit %d, err %q", code, errOut)
	}
	if _, _, code := runCtl(t, addr, "replay", "-event", "42"); code != 1 {
		t.Errorf("replay of missing event exit = %d, want 1", code)
	}
	// Unreachable daemon.
	if _, _, code := runCtl(t, "127.0.0.1:1", "status"); code != 1 {
		t.Errorf("unreachable daemon exit = %d, want 1", code)
	}
}
