package main

import (
	"os"
	"path/filepath"
	"testing"

	"umon/internal/flowkey"
	"umon/internal/netsim"
	"umon/internal/pcapio"
	"umon/internal/telemetry"
	"umon/internal/uevent"
)

// writeMirrorPcap fabricates a small mirror capture.
func writeMirrorPcap(t *testing.T, path string) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := pcapio.NewWriter(f, 0)
	flow := flowkey.Key{SrcIP: 0x0a000101, DstIP: 0x0a000201, SrcPort: 9, DstPort: 4791, Proto: 17}
	for i := int64(0); i < 20; i++ {
		rec := uevent.MirrorRecord{
			Port:        netsim.PortID{Switch: 2, Port: 1},
			TimestampNs: 100_000 + i*5_000,
			PSN:         uint32(i * 64),
			OrigBytes:   1058, WireBytes: 1058,
			Flow: flow,
		}
		if err := w.WritePacket(pcapio.Packet{
			TimestampNs: rec.TimestampNs,
			Data:        uevent.EncodeMirrorPacket(rec),
			OrigLen:     1058,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeRuns(t *testing.T) {
	dir := t.TempDir()
	pcap := filepath.Join(dir, "mirrors.pcap")
	writeMirrorPcap(t, pcap)
	if err := run(pcap, "", 50_000, 5, 100_000, 0, nil); err != nil {
		t.Fatal(err)
	}
}

// TestAnalyzeTelemetry runs the analyzer with a live registry and checks
// the query-plane counters moved: replays happened and every stage span
// was recorded.
func TestAnalyzeTelemetry(t *testing.T) {
	dir := t.TempDir()
	pcap := filepath.Join(dir, "mirrors.pcap")
	writeMirrorPcap(t, pcap)
	reg := telemetry.NewRegistry()
	if err := run(pcap, "", 50_000, 5, 100_000, 0, reg); err != nil {
		t.Fatal(err)
	}
	if reg.Value("umon_analyzer_replays_total") == 0 {
		t.Error("replay counter not live")
	}
	for _, stage := range []string{"mirror_ingest", "detect_events", "replay"} {
		name := `umon_stage_runs_total{stage="` + stage + `"}`
		if reg.Value(name) == 0 {
			t.Errorf("stage %s not traced", stage)
		}
	}
}

func TestAnalyzeMissingFile(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "nope.pcap"), "", 1000, 1, 1000, 0, nil); err == nil {
		t.Error("missing capture must fail")
	}
}

func TestAnalyzeGarbageCapture(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.pcap")
	os.WriteFile(path, []byte("not a pcap"), 0o644)
	if err := run(path, "", 1000, 1, 1000, 0, nil); err == nil {
		t.Error("garbage capture must fail")
	}
}
