package main

import (
	"os"
	"path/filepath"
	"testing"

	"bytes"

	"umon/internal/analyzer"
	"umon/internal/flowkey"
	"umon/internal/netsim"
	"umon/internal/pcapio"
	"umon/internal/report"
	"umon/internal/telemetry"
	"umon/internal/uevent"
	"umon/internal/wavesketch"
)

// writeMirrorPcap fabricates a small mirror capture.
func writeMirrorPcap(t *testing.T, path string) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := pcapio.NewWriter(f, 0)
	flow := flowkey.Key{SrcIP: 0x0a000101, DstIP: 0x0a000201, SrcPort: 9, DstPort: 4791, Proto: 17}
	for i := int64(0); i < 20; i++ {
		rec := uevent.MirrorRecord{
			Port:        netsim.PortID{Switch: 2, Port: 1},
			TimestampNs: 100_000 + i*5_000,
			PSN:         uint32(i * 64),
			OrigBytes:   1058, WireBytes: 1058,
			Flow: flow,
		}
		if err := w.WritePacket(pcapio.Packet{
			TimestampNs: rec.TimestampNs,
			Data:        uevent.EncodeMirrorPacket(rec),
			OrigLen:     1058,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeRuns(t *testing.T) {
	dir := t.TempDir()
	pcap := filepath.Join(dir, "mirrors.pcap")
	writeMirrorPcap(t, pcap)
	if err := run(pcap, "", 50_000, 5, 100_000, 0, nil); err != nil {
		t.Fatal(err)
	}
}

// TestAnalyzeTelemetry runs the analyzer with a live registry and checks
// the query-plane counters moved: replays happened and every stage span
// was recorded.
func TestAnalyzeTelemetry(t *testing.T) {
	dir := t.TempDir()
	pcap := filepath.Join(dir, "mirrors.pcap")
	writeMirrorPcap(t, pcap)
	reg := telemetry.NewRegistry()
	if err := run(pcap, "", 50_000, 5, 100_000, 0, reg); err != nil {
		t.Fatal(err)
	}
	if reg.Value("umon_analyzer_replays_total") == 0 {
		t.Error("replay counter not live")
	}
	for _, stage := range []string{"mirror_ingest", "detect_events", "replay"} {
		name := `umon_stage_runs_total{stage="` + stage + `"}`
		if reg.Value(name) == 0 {
			t.Errorf("stage %s not traced", stage)
		}
	}
}

func TestAnalyzeMissingFile(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "nope.pcap"), "", 1000, 1, 1000, 0, nil); err == nil {
		t.Error("missing capture must fail")
	}
}

func TestAnalyzeGarbageCapture(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.pcap")
	os.WriteFile(path, []byte("not a pcap"), 0o644)
	if err := run(path, "", 1000, 1, 1000, 0, nil); err == nil {
		t.Error("garbage capture must fail")
	}
}

// TestAnalyzeFramedReports feeds the analyzer the same report payloads as
// per-period .umon files and as one framed .umstream, plus a direct file
// path — all three input shapes must ingest cleanly alongside a mirror
// capture.
func TestAnalyzeFramedReports(t *testing.T) {
	mk := func(host int, w int64, v int64) *report.HostReport {
		s, err := wavesketch.NewBasic(wavesketch.Default(16))
		if err != nil {
			t.Fatal(err)
		}
		s.Update(flowkey.Key{SrcIP: 0x0a000101, DstIP: 0x0a000201, SrcPort: 9, DstPort: 4791, Proto: 17}, w, v)
		s.Seal()
		return report.FromBasic(host, 0, s)
	}

	legacyDir := t.TempDir()
	pcap := filepath.Join(legacyDir, "mirrors.pcap")
	writeMirrorPcap(t, pcap)
	var raw bytes.Buffer
	if _, err := mk(0, 12, 100).Encode(&raw); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(legacyDir, "report-h00-000.umon"), raw.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	streamDir := t.TempDir()
	sf, err := os.Create(filepath.Join(streamDir, "reports.umstream"))
	if err != nil {
		t.Fatal(err)
	}
	sw, err := report.NewStreamWriter(sf)
	if err != nil {
		t.Fatal(err)
	}
	for e := uint64(0); e < 3; e++ {
		if err := sw.WriteReport(e, mk(int(e), 12, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sf.Close(); err != nil {
		t.Fatal(err)
	}

	// Legacy directory, framed directory, and direct stream-file path.
	if err := run(pcap, legacyDir, 50_000, 5, 100_000, 0, nil); err != nil {
		t.Fatalf("legacy dir: %v", err)
	}
	if err := run(pcap, streamDir, 50_000, 5, 100_000, 0, nil); err != nil {
		t.Fatalf("stream dir: %v", err)
	}
	if err := run(pcap, filepath.Join(streamDir, "reports.umstream"), 50_000, 5, 100_000, 2, nil); err != nil {
		t.Fatalf("stream file: %v", err)
	}

	// Mixed directory: legacy + framed side by side.
	if err := os.WriteFile(filepath.Join(streamDir, "report-h09-000.umon"), raw.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	a := analyzer.New()
	n, err := ingestReports(a, streamDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 || a.Reports() != 4 {
		t.Fatalf("mixed dir ingested %d (analyzer %d), want 4", n, a.Reports())
	}
}
