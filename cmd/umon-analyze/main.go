// umon-analyze is the offline µMon analyzer CLI: it ingests a mirror pcap
// (VLAN-tagged CE packets with switch timestamps) and a directory of host
// WaveSketch reports, detects congestion events, prints their
// distribution, and replays the most significant event.
//
// Usage:
//
//	umon-analyze -mirrors out/mirrors.pcap -reports out/ [-gap-us 50] [-top 10]
//	             [-workers N]
//
// Reports are decoded and indexed in parallel and handed to the analyzer
// in path order, so the output is identical at any worker count.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"umon/internal/analyzer"
	"umon/internal/mbuf"
	"umon/internal/measure"
	"umon/internal/parallel"
	"umon/internal/pcapio"
	"umon/internal/report"
	"umon/internal/telemetry"
)

func main() {
	mirrors := flag.String("mirrors", "", "mirror pcap from umon-sim (required)")
	reports := flag.String("reports", "", "directory of .umon host reports")
	gapUs := flag.Int64("gap-us", 50, "event clustering gap in microseconds")
	top := flag.Int("top", 10, "events to list")
	replayMarginUs := flag.Int64("replay-margin-us", 250, "replay margin around the event")
	workers := flag.Int("workers", 0, "worker-pool width for decode/replay (0: UMON_WORKERS or GOMAXPROCS)")
	decodeBudget := flag.Int("decode-budget", 0, "max resident decoded curves per report (0: unbounded; evicted curves re-decode on demand)")
	telemetryAddr := flag.String("telemetry-addr", "", "serve live telemetry on this address (/metrics Prometheus, /vars JSON, /debug/pprof)")
	telemetryDump := flag.Bool("telemetry-dump", false, "print a telemetry summary to stderr at end of run")
	flag.Parse()

	if *workers > 0 {
		parallel.SetWorkers(*workers)
	}

	if *mirrors == "" {
		flag.Usage()
		os.Exit(2)
	}
	var reg *telemetry.Registry
	if *telemetryAddr != "" || *telemetryDump {
		reg = telemetry.NewRegistry()
	}
	if *telemetryAddr != "" {
		srv, err := telemetry.Serve(*telemetryAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "umon-analyze:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "umon-analyze: telemetry on http://%s/metrics\n", srv.Addr())
	}
	err := run(*mirrors, *reports, *gapUs*1000, *top, *replayMarginUs*1000, *decodeBudget, reg)
	if *telemetryDump {
		reg.WriteSummary(os.Stderr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "umon-analyze:", err)
		os.Exit(1)
	}
}

func run(mirrorPath, reportDir string, gapNs int64, top int, replayMarginNs int64, decodeBudget int, reg *telemetry.Registry) error {
	a := analyzer.New()
	a.SetStats(analyzer.NewPlaneStats(reg))
	tracer := telemetry.NewTracer(reg)

	f, err := os.Open(mirrorPath)
	if err != nil {
		return err
	}
	defer f.Close()
	// Stream the capture in batches of pooled-buffer views: the analyzer's
	// decode is in-place, so no per-packet copy ever happens and memory
	// stays bounded by the batch in flight rather than the file size.
	pool := mbuf.New(mbuf.Config{Stats: mbuf.NewPoolStats(reg)})
	rd, err := pcapio.NewReaderOpts(f, pcapio.ReaderOpts{Pool: pool})
	if err != nil {
		return fmt.Errorf("reading %s: %w", mirrorPath, err)
	}
	defer rd.Close()
	var badMirror int
	span := tracer.Start("mirror_ingest")
	var batch pcapio.Batch
	for {
		n, err := rd.ReadBatch(&batch, pcapio.DefaultBatchSize)
		for _, p := range batch.Pkts[:n] {
			if err := a.AddMirrorPacket(p.Data); err != nil {
				badMirror++
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			span.End()
			return fmt.Errorf("reading %s: %w", mirrorPath, err)
		}
	}
	batch.Release()
	span.End()
	fmt.Printf("mirrors       %d packets ingested, %d unparseable\n", a.Mirrors(), badMirror)

	if reportDir != "" {
		span = tracer.Start("report_decode")
		ingested, err := ingestReports(a, reportDir, decodeBudget)
		span.End()
		if err != nil {
			return err
		}
		fmt.Printf("reports       %d ingested from %s\n", ingested, reportDir)
	}

	span = tracer.Start("detect_events")
	events := a.DetectEvents(gapNs)
	span.End()
	stats := analyzer.Durations(events)
	fmt.Printf("events        %d detected (gap %dus)\n", stats.Count, gapNs/1000)
	if stats.Count == 0 {
		return nil
	}
	fmt.Printf("durations     p50 %.0fus  p90 %.0fus  p99 %.0fus  max %.0fus\n",
		float64(stats.P50Ns)/1000, float64(stats.P90Ns)/1000,
		float64(stats.P99Ns)/1000, float64(stats.MaxNs)/1000)

	// Top events by mirrored packets.
	sorted := append([]analyzer.Event(nil), events...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Packets > sorted[j].Packets })
	if top > len(sorted) {
		top = len(sorted)
	}
	fmt.Println("\ntop events:")
	for i := 0; i < top; i++ {
		ev := sorted[i]
		fmt.Printf("  %2d. sw%d/p%d  t=%.0f-%.0fus  %d pkts  %d flows\n",
			i+1, ev.Port.Switch, ev.Port.Port,
			float64(ev.StartNs)/1000, float64(ev.EndNs)/1000, ev.Packets, len(ev.Flows))
	}

	// Replay the biggest event if rate curves are available.
	best := sorted[0]
	span = tracer.Start("replay")
	view := a.Replay(best, replayMarginNs)
	span.End()
	var active int
	for _, c := range view.Curves {
		for _, v := range c {
			if v > 0 {
				active++
				break
			}
		}
	}
	if active == 0 {
		fmt.Println("\nno rate curves available for replay (pass -reports)")
		return nil
	}
	fmt.Printf("\nreplay of the largest event (%s):\n", best.String())
	flows := best.Flows
	if len(flows) > 4 {
		flows = flows[:4]
	}
	header := fmt.Sprintf("  %-12s", "window")
	for i := range flows {
		header += fmt.Sprintf("  flow%-2d(Gbps)", i)
	}
	fmt.Println(header)
	step := view.Windows / 24
	if step < 1 {
		step = 1
	}
	for w := 0; w < view.Windows; w += step {
		line := fmt.Sprintf("  %-12d", view.WindowStart+int64(w))
		for _, fk := range flows {
			line += fmt.Sprintf("  %-12.2f", analyzer.RateGbps(view.Curves[fk][w]))
		}
		marker := ""
		abs := (view.WindowStart + int64(w)) * measure.WindowNanos
		if abs >= best.StartNs && abs <= best.EndNs {
			marker = "  <- event"
		}
		fmt.Println(strings.TrimRight(line, " ") + marker)
	}
	return nil
}

// ingestReports feeds host reports from path into the analyzer. Path may
// be a directory holding legacy per-period .umon files and/or framed
// .umstream files, or one stream file directly. Legacy files decode in
// parallel and land in path order; stream frames land in file order — both
// deterministic at any worker count.
func ingestReports(a *analyzer.Analyzer, path string, decodeBudget int) (int, error) {
	st, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	if !st.IsDir() {
		return ingestStreamFile(a, path, decodeBudget)
	}
	entries, err := filepath.Glob(filepath.Join(path, "*.umon"))
	if err != nil {
		return 0, err
	}
	sort.Strings(entries)
	// Decode and index the legacy reports in parallel (building the query
	// indexes — colocation, routing bitmaps — is per-report work), then
	// hand them to the analyzer in path order so its routing index is
	// deterministic.
	queryables := make([]*report.Queryable, len(entries))
	err = parallel.ForEachErr(len(entries), func(i int) error {
		raw, err := os.ReadFile(entries[i])
		if err != nil {
			return err
		}
		rep, err := report.Decode(bytes.NewReader(raw))
		if err != nil {
			return fmt.Errorf("decoding %s: %w", entries[i], err)
		}
		q := report.NewQueryable(rep)
		if decodeBudget > 0 {
			q.SetDecodeBudget(decodeBudget)
		}
		queryables[i] = q
		return nil
	})
	if err != nil {
		return 0, err
	}
	for _, q := range queryables {
		a.AddQueryable(q)
	}
	ingested := len(entries)

	streams, err := filepath.Glob(filepath.Join(path, "*.umstream"))
	if err != nil {
		return ingested, err
	}
	sort.Strings(streams)
	for _, sf := range streams {
		n, err := ingestStreamFile(a, sf, decodeBudget)
		ingested += n
		if err != nil {
			return ingested, err
		}
	}
	return ingested, nil
}

// ingestStreamFile drains one epoch-rotated report stream into the
// analyzer. CRC-damaged frames are skipped and reported, not fatal: the
// reader stays framed past a corrupt record.
func ingestStreamFile(a *analyzer.Analyzer, path string, decodeBudget int) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sr, err := report.NewStreamReader(f)
	if err != nil {
		return 0, fmt.Errorf("reading %s: %w", path, err)
	}
	ingested := 0
	var fr report.Frame
	for {
		err := sr.Next(&fr)
		if err == io.EOF {
			break
		}
		if err != nil {
			return ingested, fmt.Errorf("reading %s: %w", path, err)
		}
		if fr.Type != report.FrameReport {
			continue
		}
		rep, err := fr.Report()
		if err != nil {
			return ingested, fmt.Errorf("decoding %s frame %d: %w", path, ingested, err)
		}
		q := report.NewQueryable(rep)
		if decodeBudget > 0 {
			q.SetDecodeBudget(decodeBudget)
		}
		a.AddQueryable(q)
		ingested++
	}
	if bad := sr.CRCErrors(); bad > 0 {
		fmt.Fprintf(os.Stderr, "umon-analyze: %s: %d corrupt frames skipped\n", path, bad)
	}
	return ingested, nil
}
